(* Kernel-level perf trajectory: GEMM, Loewner assembly, Jacobi SVD and
   the frequency sweep, each timed against its sequential baseline for
   1 and N domains, written to BENCH_kernels.json.

   Methodology: machine throughput drifts, so every repetition times all
   arms of one op back-to-back (baseline first) and the reported speedup
   is the *median of the per-repetition paired ratios* — robust against
   drift between repetitions in a way the ratio of medians is not.
   [median_ns] is still the plain per-arm median for absolute context.

   Baselines:
     - gemm / gemm_cn: the seed scalar kernels, still exported as
       [Cmat.mul_reference] / [Cmat.mul_cn_reference].
     - loewner: the seed per-pair assembly (small products + block
       copies), reimplemented below exactly as it stood.
     - svd_jacobi / freq_sweep: the same code forced sequential via
       [Parallel.with_sequential] (there is no separate seed kernel).

   Wall-clock time via [Unix.gettimeofday]: [Sys.time] counts CPU time
   summed over domains, which is the wrong metric for a parallel run. *)

open Statespace
open Mfti
open Linalg

(* Shared JSON reader/writer lives in [Bjson]. *)
module Json = Bjson

(* ------------------------------------------------------------------ *)
(* Seed Loewner assembly, kept verbatim as the benchmark baseline: one
   small product, scale and block copy per (left, right) block pair. *)

let loewner_baseline (data : Tangential.t) =
  let right = data.Tangential.right and left = data.Tangential.left in
  let right_sizes = Tangential.right_sizes data in
  let left_sizes = Tangential.left_sizes data in
  let kr = Array.fold_left ( + ) 0 right_sizes in
  let kl = Array.fold_left ( + ) 0 left_sizes in
  let col_off = Array.make (Array.length right_sizes) 0 in
  for i = 1 to Array.length right_sizes - 1 do
    col_off.(i) <- col_off.(i - 1) + right_sizes.(i - 1)
  done;
  let row_off = Array.make (Array.length left_sizes) 0 in
  for i = 1 to Array.length left_sizes - 1 do
    row_off.(i) <- row_off.(i - 1) + left_sizes.(i - 1)
  done;
  let ll = Cmat.zeros kl kr and sll = Cmat.zeros kl kr in
  Array.iteri
    (fun i (lb : Tangential.left_block) ->
      Array.iteri
        (fun j (rb : Tangential.right_block) ->
          let denom = Cx.sub lb.Tangential.mu rb.Tangential.lambda in
          if Cx.abs denom = 0. then
            invalid_arg "loewner_baseline: coincident points";
          let inv = Cx.inv denom in
          let vr = Cmat.mul lb.Tangential.v rb.Tangential.r in
          let lw = Cmat.mul lb.Tangential.l rb.Tangential.w in
          let blk = Cmat.scale inv (Cmat.sub vr lw) in
          let sblk =
            Cmat.scale inv
              (Cmat.sub
                 (Cmat.scale lb.Tangential.mu vr)
                 (Cmat.scale rb.Tangential.lambda lw))
          in
          Cmat.set_sub ll ~r:row_off.(i) ~c:col_off.(j) blk;
          Cmat.set_sub sll ~r:row_off.(i) ~c:col_off.(j) sblk)
        right)
    left;
  (ll, sll)

(* ------------------------------------------------------------------ *)
(* Paired timing *)

let wall f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  Unix.gettimeofday () -. t0

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

type row = {
  op : string;
  size : string;
  domains : int;
  median_ns : float;
  speedup : float;
}

(* [arms] = (op, domains, thunk) list; the first arm is the baseline the
   speedups refer to.  Every rep runs all arms once, in order. *)
let time_arms ~reps ~size arms =
  List.iter (fun (_, _, f) -> ignore (Sys.opaque_identity (f ()))) arms;
  let narm = List.length arms in
  let times = Array.make_matrix narm reps 0. in
  for rep = 0 to reps - 1 do
    List.iteri (fun ai (_, _, f) -> times.(ai).(rep) <- wall f) arms
  done;
  List.mapi
    (fun ai (op, domains, _) ->
      let med = median times.(ai) in
      let speedup =
        if ai = 0 then 1.0
        else
          median (Array.init reps (fun r -> times.(0).(r) /. times.(ai).(r)))
      in
      { op; size; domains; median_ns = med *. 1e9; speedup })
    arms

(* ------------------------------------------------------------------ *)

let check label diff scale =
  let rel = if scale > 0. then diff /. scale else diff in
  if rel > 1e-10 then
    failwith (Printf.sprintf "kernels: %s mismatch (rel %g)" label rel);
  Printf.printf "  check %-28s rel diff %.2e\n%!" label rel

let run ?(smoke = false) () =
  Util.heading
    (if smoke then "kernel benchmarks (smoke)" else "kernel benchmarks");
  let reps = if smoke then 3 else 9 in
  let ndom = if smoke then 2 else 4 in
  Parallel.set_domain_count ndom;
  let rng = Rng.create 20260806 in
  let rows = ref [] in
  let emit rs = rows := !rows @ rs in

  (* --- complex GEMM ------------------------------------------------ *)
  let gemm_sizes = if smoke then [ 40 ] else [ 60; 120; 240 ] in
  List.iter
    (fun sz ->
      let a = Cmat.random rng sz sz and b = Cmat.random rng sz sz in
      let reference = Cmat.mul_reference a b in
      let blocked = Cmat.mul a b in
      check
        (Printf.sprintf "gemm %d" sz)
        (Cmat.norm_fro (Cmat.sub reference blocked))
        (Cmat.norm_fro reference);
      let size = Printf.sprintf "%dx%dx%d" sz sz sz in
      emit
        (time_arms ~reps ~size
           [ ("gemm_reference", 1, fun () -> Cmat.mul_reference a b);
             ( "gemm",
               1,
               fun () -> Parallel.with_sequential (fun () -> Cmat.mul a b) );
             ("gemm", ndom, fun () -> Cmat.mul a b) ]))
    gemm_sizes;

  (* --- conjugate-transpose GEMM ------------------------------------ *)
  let cn_sizes = if smoke then [ (40, 40, 40) ] else [ (240, 180, 200) ] in
  List.iter
    (fun (k, m, n) ->
      let a = Cmat.random rng k m and b = Cmat.random rng k n in
      let reference = Cmat.mul_cn_reference a b in
      check
        (Printf.sprintf "gemm_cn %dx%dx%d" k m n)
        (Cmat.norm_fro (Cmat.sub reference (Cmat.mul_cn a b)))
        (Cmat.norm_fro reference);
      let size = Printf.sprintf "%dx%dx%d" k m n in
      emit
        (time_arms ~reps ~size
           [ ("gemm_cn_reference", 1, fun () -> Cmat.mul_cn_reference a b);
             ( "gemm_cn",
               1,
               fun () -> Parallel.with_sequential (fun () -> Cmat.mul_cn a b)
             );
             ("gemm_cn", ndom, fun () -> Cmat.mul_cn a b) ]))
    cn_sizes;

  (* --- Loewner assembly -------------------------------------------- *)
  let loewner_cases =
    if smoke then [ (2, 8, 8) ] else [ (4, 16, 16); (8, 32, 24) ]
  in
  List.iter
    (fun (ports, nsamples, order) ->
      let sys =
        Random_sys.generate
          { Random_sys.order; ports; rank_d = ports / 2;
            freq_lo = 100.; freq_hi = 1e5; damping = 0.08; seed = 7 }
      in
      let samples =
        Sampling.sample_system sys (Sampling.logspace 100. 1e5 nsamples)
      in
      let data = Tangential.build samples in
      let pencil = Loewner.build data in
      let bll, bsll = loewner_baseline data in
      check
        (Printf.sprintf "loewner %dp x %ds (LL)" ports nsamples)
        (Cmat.norm_fro (Cmat.sub pencil.Loewner.ll bll))
        (Cmat.norm_fro bll);
      check
        (Printf.sprintf "loewner %dp x %ds (sLL)" ports nsamples)
        (Cmat.norm_fro (Cmat.sub pencil.Loewner.sll bsll))
        (Cmat.norm_fro bsll);
      let kl = Cmat.rows pencil.Loewner.ll
      and kr = Cmat.cols pencil.Loewner.ll in
      let size = Printf.sprintf "%dports_%dsamples_%dx%d" ports nsamples kl kr in
      emit
        (time_arms ~reps ~size
           [ ( "loewner_reference",
               1,
               fun () -> ignore (Sys.opaque_identity (loewner_baseline data)) );
             ( "loewner",
               1,
               fun () ->
                 Parallel.with_sequential (fun () ->
                     ignore (Sys.opaque_identity (Loewner.build data))) );
             ( "loewner",
               ndom,
               fun () -> ignore (Sys.opaque_identity (Loewner.build data)) ) ]))
    loewner_cases;

  (* --- one-sided Jacobi SVD ---------------------------------------- *)
  let svd_cases = if smoke then [ (24, 16) ] else [ (96, 64); (160, 96) ] in
  List.iter
    (fun (m, n) ->
      let a = Cmat.random rng m n in
      let seq =
        Parallel.with_sequential (fun () ->
            Svd.decompose ~algorithm:Svd.Jacobi a)
      in
      let par = Svd.decompose ~algorithm:Svd.Jacobi a in
      let sdiff =
        Array.fold_left max 0.
          (Array.map2 (fun x y -> abs_float (x -. y)) seq.Svd.sigma
             par.Svd.sigma)
      in
      check (Printf.sprintf "svd_jacobi %dx%d" m n) sdiff seq.Svd.sigma.(0);
      let size = Printf.sprintf "%dx%d" m n in
      emit
        (time_arms ~reps ~size
           [ ( "svd_jacobi",
               1,
               fun () ->
                 Parallel.with_sequential (fun () ->
                     Svd.decompose ~algorithm:Svd.Jacobi a) );
             ("svd_jacobi", ndom, fun () -> Svd.decompose ~algorithm:Svd.Jacobi a)
           ]))
    svd_cases;

  (* --- blocked one-sided Jacobi ------------------------------------ *)
  (* Same convergence cascade and per-pair arithmetic as [Jacobi], but
     the tournament pairs column blocks, so each pool task carries
     O(bs^2 m) work instead of O(m) — the handshake amortization the
     column-pair scheduler lacks (1.05x above).  Blocked visits pairs
     in a different order, so agreement with plain Jacobi is at
     rounding level, while the blocked path itself is bit-identical
     across domain counts. *)
  let blocked_cases = if smoke then [ (48, 32) ] else [ (96, 64); (160, 96) ] in
  List.iter
    (fun (m, n) ->
      let a = Cmat.random rng m n in
      let plain =
        Parallel.with_sequential (fun () ->
            Svd.decompose ~algorithm:Svd.Jacobi a)
      in
      let blocked_seq =
        Parallel.with_sequential (fun () ->
            Svd.decompose ~algorithm:Svd.Blocked_jacobi a)
      in
      let blocked_par = Svd.decompose ~algorithm:Svd.Blocked_jacobi a in
      let sdiff =
        Array.fold_left max 0.
          (Array.map2 (fun x y -> abs_float (x -. y)) plain.Svd.sigma
             blocked_par.Svd.sigma)
      in
      if sdiff > 1e-10 *. plain.Svd.sigma.(0) then
        failwith
          (Printf.sprintf "kernels: svd_blocked_jacobi %dx%d drifted from \
                           plain Jacobi (abs %g)" m n sdiff);
      let bitdiff =
        Array.exists2 (fun x y -> x <> y) blocked_seq.Svd.sigma
          blocked_par.Svd.sigma
      in
      if bitdiff then
        failwith
          (Printf.sprintf
             "kernels: svd_blocked_jacobi %dx%d not bit-deterministic \
              across domain counts" m n);
      Printf.printf "  check %-28s rel diff %.2e\n%!"
        (Printf.sprintf "svd_blocked_jacobi %dx%d" m n)
        (sdiff /. plain.Svd.sigma.(0));
      let size = Printf.sprintf "%dx%d" m n in
      emit
        (time_arms ~reps ~size
           [ ( "svd_jacobi_reference",
               1,
               fun () ->
                 Parallel.with_sequential (fun () ->
                     Svd.decompose ~algorithm:Svd.Jacobi a) );
             ( "svd_blocked_jacobi",
               1,
               fun () ->
                 Parallel.with_sequential (fun () ->
                     Svd.decompose ~algorithm:Svd.Blocked_jacobi a) );
             ( "svd_blocked_jacobi",
               ndom,
               fun () -> Svd.decompose ~algorithm:Svd.Blocked_jacobi a ) ]))
    blocked_cases;

  (* --- randomized tall-pencil reduce (Example-1 scale) ------------- *)
  (* The whole reduce stage (both stacked SVDs plus the projection
     GEMMs) through the exact path vs the certified randomized range
     finder.  The plain svd_jacobi path above is the motivating
     bottleneck but is minutes-slow at this size, so the timed
     baseline is the engine's production exact path (Golub-Kahan);
     rsvd's win over it is algorithmic — the pencil rank (Lemma 3.3)
     caps the sketch — and the sketch GEMMs also scale with domains
     where the exact path cannot. *)
  let reduce_cases = if smoke then [ (12, 30, 20) ] else [ (30, 150, 24) ] in
  List.iter
    (fun (ports, order, nsamples) ->
      let sys =
        Random_sys.generate
          { Random_sys.order; ports; rank_d = ports / 2;
            freq_lo = 100.; freq_hi = 1e5; damping = 0.08; seed = 7 }
      in
      let samples =
        Sampling.sample_system sys (Sampling.logspace 100. 1e5 nsamples)
      in
      let t = Loewner.build (Tangential.build samples) in
      let reduce backend () =
        ignore
          (Sys.opaque_identity
             (Svd_reduce.reduce ~mode:Svd_reduce.Stacked ~backend t))
      in
      let exact =
        Parallel.with_sequential (fun () ->
            Svd_reduce.reduce ~mode:Svd_reduce.Stacked ~backend:Svd_reduce.Gk t)
      in
      let rand =
        Svd_reduce.reduce ~mode:Svd_reduce.Stacked
          ~backend:Svd_reduce.Randomized t
      in
      if exact.Svd_reduce.rank <> rand.Svd_reduce.rank then
        failwith
          (Printf.sprintf
             "kernels: rsvd rank decision %d != exact %d on %d-port order-%d \
              pencil"
             rand.Svd_reduce.rank exact.Svd_reduce.rank ports order);
      let sdiff = ref 0. in
      for i = 0 to rand.Svd_reduce.rank - 1 do
        sdiff :=
          Stdlib.max !sdiff
            (abs_float
               (exact.Svd_reduce.sigma.(i) -. rand.Svd_reduce.sigma.(i)))
      done;
      (* the certificate allows a 1e-10 |A|_F perturbation of the
         retained values, so the agreement bar is looser than [check] *)
      if !sdiff > 1e-8 *. exact.Svd_reduce.sigma.(0) then
        failwith
          (Printf.sprintf "kernels: rsvd retained spectrum drifted (abs %g)"
             !sdiff);
      Printf.printf "  check %-28s rel diff %.2e (rank %d)\n%!"
        (Printf.sprintf "rsvd reduce %dp order%d" ports order)
        (!sdiff /. exact.Svd_reduce.sigma.(0))
        rand.Svd_reduce.rank;
      let kl = Cmat.rows t.Loewner.ll and kr = Cmat.cols t.Loewner.ll in
      let size = Printf.sprintf "%dports_order%d_%dx%d" ports order kl kr in
      (* the exact arm is tens of seconds at Example-1 scale *)
      let reps = Stdlib.max 3 (reps / 3) in
      emit
        (time_arms ~reps ~size
           [ ( "rsvd_exact_reference",
               1,
               fun () ->
                 Parallel.with_sequential (reduce Svd_reduce.Gk) );
             ( "rsvd",
               1,
               fun () ->
                 Parallel.with_sequential (reduce Svd_reduce.Randomized) );
             ("rsvd", ndom, reduce Svd_reduce.Randomized) ]))
    reduce_cases;

  (* --- frequency sweep --------------------------------------------- *)
  let sweep_cases = if smoke then [ (8, 2, 6) ] else [ (40, 4, 64) ] in
  List.iter
    (fun (order, ports, nfreq) ->
      let sys =
        Random_sys.generate
          { Random_sys.order; ports; rank_d = Stdlib.max 1 (ports / 2);
            freq_lo = 100.; freq_hi = 1e6; damping = 0.05; seed = 3 }
      in
      let freqs = Sampling.logspace 100. 1e6 nfreq in
      let seq =
        Parallel.with_sequential (fun () -> Sampling.sample_system sys freqs)
      in
      let par = Sampling.sample_system sys freqs in
      let diff =
        Array.fold_left max 0.
          (Array.map2
             (fun (a : Sampling.sample) (b : Sampling.sample) ->
               Cmat.norm_fro (Cmat.sub a.Sampling.s b.Sampling.s))
             seq par)
      in
      check (Printf.sprintf "freq_sweep n%d x %df" order nfreq) diff 1.0;
      let size = Printf.sprintf "order%d_%dfreqs" order nfreq in
      emit
        (time_arms ~reps ~size
           [ ( "freq_sweep",
               1,
               fun () ->
                 Parallel.with_sequential (fun () ->
                     Sampling.sample_system sys freqs) );
             ("freq_sweep", ndom, fun () -> Sampling.sample_system sys freqs)
           ]))
    sweep_cases;

  (* --- report ------------------------------------------------------ *)
  let rows = !rows in
  Util.print_table
    ~header:[ "op"; "size"; "domains"; "median"; "speedup" ]
    (List.map
       (fun r ->
         [ r.op; r.size; string_of_int r.domains;
           Printf.sprintf "%.3f ms" (r.median_ns /. 1e6);
           Printf.sprintf "%.2fx" r.speedup ])
       rows);
  let json =
    Json.Obj
      (Json.std_header ~schema:"mfti-bench-kernels/1"
         ~tool:"bench/main.exe kernels" ~smoke
      @ [ ("reps", Json.Num (float_of_int reps));
        ("domains", Json.Num (float_of_int ndom));
        ( "results",
          Json.Arr
            (List.map
               (fun r ->
                 Json.Obj
                   [ ("op", Json.Str r.op);
                     ("size", Json.Str r.size);
                     ("domains", Json.Num (float_of_int r.domains));
                     ("median_ns", Json.Num (Float.round r.median_ns));
                     ("speedup", Json.Num r.speedup) ])
               rows) ) ])
  in
  let path = if smoke then "BENCH_kernels.smoke.json" else "BENCH_kernels.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d rows)\n%!" path (List.length rows);
  (* The smoke run validates the emitted JSON round-trips through the
     parser with the fields downstream tooling keys on. *)
  if smoke then begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let parsed = Json.parse text in
    (match Json.member "results" parsed with
     | Some (Json.Arr (_ :: _ as rs)) ->
       List.iter
         (fun r ->
           List.iter
             (fun field ->
               if Json.member field r = None then
                 failwith ("kernels: JSON row missing " ^ field))
             [ "op"; "size"; "domains"; "median_ns"; "speedup" ])
         rs
     | _ -> failwith "kernels: JSON missing results array");
    Printf.printf "smoke: JSON parses, all rows well-formed\n%!";
    (* The committed full report must carry the randomized reduce and
       blocked-Jacobi entries, and the tall-pencil reduce must not
       have regressed to the serial path: the multi-domain rsvd row's
       speedup (vs the exact sequential baseline arm) must stay > 1. *)
    let committed =
      List.find_opt Sys.file_exists
        [ "BENCH_kernels.json"; "../BENCH_kernels.json" ]
    in
    (match committed with
     | None -> failwith "kernels: committed BENCH_kernels.json not found"
     | Some path ->
       let ic = open_in path in
       let len = in_channel_length ic in
       let text = really_input_string ic len in
       close_in ic;
       let parsed = Json.parse text in
       let rows =
         match Json.member "results" parsed with
         | Some (Json.Arr rs) -> rs
         | _ -> failwith "kernels: committed report missing results array"
       in
       let field_str r k =
         match Json.member k r with Some (Json.Str s) -> Some s | _ -> None
       in
       let field_num r k =
         match Json.member k r with Some (Json.Num x) -> Some x | _ -> None
       in
       let ops = List.filter_map (fun r -> field_str r "op") rows in
       List.iter
         (fun op ->
           if not (List.mem op ops) then
             failwith
               (Printf.sprintf
                  "kernels: committed BENCH_kernels.json has no %s entries \
                   (rerun `dune exec bench/main.exe -- kernels`)"
                  op))
         [ "rsvd"; "svd_blocked_jacobi" ];
       let rsvd_multi =
         List.filter
           (fun r ->
             field_str r "op" = Some "rsvd"
             && (match field_num r "domains" with
                 | Some d -> d > 1.
                 | None -> false))
           rows
       in
       (match rsvd_multi with
        | [] ->
          failwith
            "kernels: committed BENCH_kernels.json lacks a multi-domain \
             rsvd row"
        | rs ->
          List.iter
            (fun r ->
              match field_num r "speedup" with
              | Some s when s > 1. -> ()
              | Some s ->
                failwith
                  (Printf.sprintf
                     "kernels: tall-pencil reduce regressed to serial \
                      (rsvd multi-domain speedup %.2fx <= 1)"
                     s)
              | None -> failwith "kernels: rsvd row missing speedup")
            rs);
       Printf.printf
         "smoke: committed BENCH_kernels.json has rsvd + blocked-Jacobi \
          entries, reduce still parallel\n%!")
  end;
  Parallel.set_domain_count 1
