(* Sparse substrate at acceptance scale: assemble, factor and
   Krylov-reduce a ~100k-node PDN plane grid (writes BENCH_sparse.json).

   The dense MNA path is cubic in the state count and simply absent at
   this size (320x320 plane = 102k states); every arm below runs
   through lib/linalg/sparse.  The
   krylov_reduce arm is the headline: a full tangential rational Krylov
   pre-reduction of the grid to a few hundred states, and krylov_mfti
   carries it end-to-end through the staged MFTI engine.

   --smoke shrinks the grid to 24x24 and additionally validates the
   committed BENCH_sparse.json: it must parse, describe a >= 100k-node
   grid, and carry assemble / factor / krylov_reduce arms. *)

module Json = Bjson

let band = (1e5, 1e9)

let spec ~side =
  { Rf.Pdn.default_spec with
    nx = side; ny = side;
    ports = 8;
    decaps = 16;
    (* resistive plane: MNA order stays at the node count, which is the
       regime the 100k acceptance targets *)
    plane_rl = false;
    seed = 7 }

let run ?(smoke = false) () =
  Util.heading "Sparse pipeline: 100k-node plane grid";
  let side = if smoke then 24 else 320 in
  let f_lo, f_hi = band in
  let sp = spec ~side in
  let circuit, assemble_s = Util.time_it (fun () -> Rf.Pdn.build sp) in
  let (g, c, b, l), system_s =
    Util.time_it (fun () -> Rf.Mna.sparse_system circuit)
  in
  let nodes = Rf.Mna.num_nodes circuit in
  let states = Rf.Mna.num_states circuit in
  Printf.printf "grid %dx%d: %d nodes, %d states, nnz(G) = %d\n%!" side side
    nodes states (Sparse.Scsr.nnz g);
  let pattern = Sparse.Scsr.scale_add ~alpha:Linalg.Cx.one c ~beta:Linalg.Cx.one g in
  let perm, ordering_s =
    Util.time_it (fun () -> Sparse.Ordering.amd pattern)
  in
  let f_mid = sqrt (f_lo *. f_hi) in
  let pencil =
    Sparse.Scsr.scale_add
      ~alpha:(Linalg.Cx.jw (2. *. Float.pi *. f_mid)) c ~beta:Linalg.Cx.one g
  in
  let fac, factor_s =
    Util.time_it (fun () ->
        match Sparse.Slu.factorize ~perm pencil with
        | Ok f -> f
        | Error e -> failwith (Linalg.Mfti_error.to_string e))
  in
  let _, solve_s = Util.time_it (fun () -> Sparse.Slu.solve fac b) in
  let koptions =
    { Mfti.Krylov.default_options with
      f_lo; f_hi;
      shifts = (if smoke then 4 else 8);
      max_order = (if smoke then 96 else 240);
      tol = 1e-8; z0 = Some 50. }
  in
  let sys = { Mfti.Krylov.g; c; b; l } in
  let kr, reduce_s =
    Util.time_it (fun () ->
        match Mfti.Krylov.reduce ~options:koptions sys with
        | Ok kr -> kr
        | Error e -> failwith (Linalg.Mfti_error.to_string e))
  in
  let (model, _), mfti_s =
    Util.time_it (fun () ->
        match Mfti.Krylov.fit_mfti ~options:koptions sys with
        | Ok r -> r
        | Error e -> failwith (Linalg.Mfti_error.to_string e))
  in
  let holdout_err =
    let h = kr.Mfti.Krylov.history in
    if Array.length h > 0 then h.(Array.length h - 1) else Float.nan
  in
  let arms =
    [ ("assemble", assemble_s +. system_s);
      ("ordering", ordering_s);
      ("factor", factor_s);
      ("solve", solve_s);
      ("krylov_reduce", reduce_s);
      ("krylov_mfti", mfti_s) ]
  in
  Util.print_table
    ~header:[ "op"; "seconds" ]
    (List.map (fun (op, s) -> [ op; Printf.sprintf "%.3f" s ]) arms);
  Printf.printf
    "krylov: order %d from %d shifts, %d factorizations, hold-out err %.3e\n"
    kr.Mfti.Krylov.order
    (Array.length kr.Mfti.Krylov.shift_freqs)
    kr.Mfti.Krylov.factorizations holdout_err;
  Printf.printf "krylov+mfti: final order %d\n%!"
    (Mfti.Engine.Model.rank model);
  let json =
    Json.Obj
      (Json.std_header ~schema:"mfti-bench-sparse/1"
         ~tool:"bench/main.exe sparse" ~smoke
      @ [ ("grid", Json.Str (Printf.sprintf "%dx%d" side side));
          ("nodes", Json.Num (float_of_int nodes));
          ("states", Json.Num (float_of_int states));
          ("nnz_g", Json.Num (float_of_int (Sparse.Scsr.nnz g)));
          ("ports", Json.Num (float_of_int sp.Rf.Pdn.ports));
          ("f_lo", Json.Num f_lo);
          ("f_hi", Json.Num f_hi);
          ( "krylov",
            Json.Obj
              [ ("order", Json.Num (float_of_int kr.Mfti.Krylov.order));
                ( "shifts",
                  Json.Num
                    (float_of_int (Array.length kr.Mfti.Krylov.shift_freqs)) );
                ( "factorizations",
                  Json.Num (float_of_int kr.Mfti.Krylov.factorizations) );
                ("holdout_err", Json.Num holdout_err);
                ( "final_order",
                  Json.Num (float_of_int (Mfti.Engine.Model.rank model)) ) ] );
          ( "results",
            Json.Arr
              (List.map
                 (fun (op, s) ->
                   Json.Obj [ ("op", Json.Str op); ("seconds", Json.Num s) ])
                 arms) ) ])
  in
  let path = if smoke then "BENCH_sparse.smoke.json" else "BENCH_sparse.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path;

  if smoke then begin
    (* the emitted smoke JSON must round-trip *)
    let read p =
      let ic = open_in p in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Json.parse text
    in
    let parsed = read path in
    List.iter
      (fun field ->
        if Json.member field parsed = None then
          failwith ("sparse bench: JSON missing " ^ field))
      [ "schema"; "cpus"; "grid"; "nodes"; "krylov"; "results" ];
    Printf.printf "smoke: JSON parses, header well-formed\n%!";
    (* the committed full report must describe the 100k-node acceptance
       run with every pipeline arm present and positive *)
    let committed =
      List.find_opt Sys.file_exists
        [ "BENCH_sparse.json"; "../BENCH_sparse.json" ]
    in
    match committed with
    | None ->
      failwith
        "sparse bench: committed BENCH_sparse.json not found (rerun `dune \
         exec bench/main.exe -- sparse`)"
    | Some p ->
      let parsed = read p in
      (match Json.member "nodes" parsed with
       | Some (Json.Num n) when n >= 1e5 -> ()
       | _ ->
         failwith
           "sparse bench: committed BENCH_sparse.json is not a 100k-node \
            run");
      let rows =
        match Json.member "results" parsed with
        | Some (Json.Arr rs) -> rs
        | _ -> failwith "sparse bench: committed report missing results"
      in
      let seconds op =
        List.find_map
          (fun r ->
            match (Json.member "op" r, Json.member "seconds" r) with
            | Some (Json.Str o), Some (Json.Num s) when o = op -> Some s
            | _ -> None)
          rows
      in
      List.iter
        (fun op ->
          match seconds op with
          | Some s when s > 0. -> ()
          | _ ->
            failwith
              (Printf.sprintf
                 "sparse bench: committed BENCH_sparse.json lacks a \
                  positive %s arm"
                 op))
        [ "assemble"; "factor"; "krylov_reduce" ];
      (match Json.member "krylov" parsed with
       | Some k ->
         (match Json.member "holdout_err" k with
          | Some (Json.Num e) when e < 1e-3 -> ()
          | _ ->
            failwith
              "sparse bench: committed krylov hold-out error missing or \
               above 1e-3")
       | None -> failwith "sparse bench: committed report missing krylov");
      Printf.printf "smoke: committed BENCH_sparse.json validates\n%!"
  end
