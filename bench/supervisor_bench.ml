(* Supervised-serving benchmark: request throughput through the full
   socket transport (accept loop, admission queue, worker pool,
   deadlines) at 1, 2 and 4 workers, plus the shed rate when a
   single-worker single-slot server is deliberately overloaded.

   Clients are systhreads in this process hammering a real Unix domain
   socket, one persistent connection each, strict request/response —
   so the numbers include framing, scheduling and queueing, not just
   Server.handle_line.  The overload arm pins the only worker with a
   stalled partial frame and then blasts connects: everything past the
   one queue slot must be shed with a typed "overloaded" response, and
   the measured shed rate is reported.

   Writes BENCH_supervisor.json (or BENCH_supervisor.smoke.json with
   --smoke, which also re-parses the report and validates the fields
   downstream tooling keys on). *)

open Statespace

module Json = Bjson

(* ------------------------------------------------------------------ *)
(* Raw socket client *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_raw fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let recv_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i -> Some (String.sub s 0 i)
    | None ->
      (match Unix.read fd chunk 0 (Bytes.length chunk) with
       | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
       | k -> Buffer.add_subbytes buf chunk 0 k; go ()
       | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
         None)
  in
  go ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

let run ?(smoke = false) () =
  Util.heading
    (if smoke then "supervisor benchmark (smoke)"
     else "supervisor benchmark");
  let clients = 4 in
  let per_client = if smoke then 25 else 250 in
  let worker_arms = [ 1; 2; 4 ] in

  (* one small packed model to serve *)
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mfti_sup_bench_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sys =
    Random_sys.generate
      { Random_sys.order = 16; ports = 2; rank_d = 1; freq_lo = 1e6;
        freq_hi = 1e10; damping = 0.05; seed = 42 }
  in
  Serve.Artifact.save (Filename.concat root "bench.mfti")
    (Serve.Artifact.v ~name:"bench" ~fit_err:0.
       (Mfti.Engine.Model.make ~rank:16 sys));
  let sock_path n =
    Filename.concat root (Printf.sprintf "sup%d.sock" n)
  in
  let req = {|{"op":"model-info","model":"bench"}|} ^ "\n" in

  (* ---------------------------------------------------------------- *)
  (* throughput arms: [clients] persistent connections, strict
     request/response, total requests / wall seconds *)

  let throughput workers =
    let srv = Serve.Server.create ~root () in
    let config =
      { Serve.Supervisor.default_config with
        workers; queue = 64; request_timeout_ms = 10_000;
        drain_ms = 2_000 }
    in
    let path = sock_path workers in
    let sup = Serve.Supervisor.start ~config srv ~listen:(Serve.Supervisor.Unix_path path) in
    let failures = Atomic.make 0 in
    let body () =
      let fd = connect path in
      for _ = 1 to per_client do
        send_raw fd req;
        match recv_line fd with
        | Some l when String.length l >= 11
                      && String.sub l 0 11 = {|{"ok": true|} -> ()
        | _ -> Atomic.incr failures
      done;
      close_quiet fd
    in
    let t0 = Unix.gettimeofday () in
    let ths = List.init clients (fun _ -> Thread.create body ()) in
    List.iter Thread.join ths;
    let dt = Unix.gettimeofday () -. t0 in
    Serve.Supervisor.stop sup;
    if Atomic.get failures > 0 then
      failwith
        (Printf.sprintf "supervisor bench: %d requests failed at %d workers"
           (Atomic.get failures) workers);
    float_of_int (clients * per_client) /. dt
  in
  let rates = List.map (fun w -> (w, throughput w)) worker_arms in
  List.iter
    (fun (w, r) ->
      Printf.printf "  %d worker%s: %8.0f req/s\n%!" w
        (if w = 1 then " " else "s") r)
    rates;

  (* ---------------------------------------------------------------- *)
  (* overload arm: 1 worker pinned by a stalled partial frame, 1 queue
     slot; every surplus connect must be shed with "overloaded" *)

  let blast = if smoke then 8 else 32 in
  let shed_rate, shed, accepted =
    let srv = Serve.Server.create ~root () in
    let config =
      { Serve.Supervisor.default_config with
        workers = 1; queue = 1; request_timeout_ms = 400; drain_ms = 1_000 }
    in
    let path = Filename.concat root "overload.sock" in
    let sup = Serve.Supervisor.start ~config srv ~listen:(Serve.Supervisor.Unix_path path) in
    let pin = connect path in
    send_raw pin {|{"op":"sta|};
    let rec wait_busy n =
      if n = 0 then failwith "supervisor bench: worker never became busy";
      if (Serve.Supervisor.stats sup).Serve.Supervisor.in_flight < 1 then begin
        Unix.sleepf 0.01;
        wait_busy (n - 1)
      end
    in
    wait_busy 300;
    (* open every connection before reading any response: the queue
       (capacity 1) fills instantly and the surplus is shed at accept
       time — reading first would serialize the connects and never
       overload the server *)
    let fds =
      List.init blast (fun _ ->
          let fd = connect path in
          send_raw fd req;
          fd)
    in
    let overloaded = ref 0 in
    List.iter
      (fun fd ->
        (match recv_line fd with
         | Some l ->
           let is k =
             let n = String.length k and h = String.length l in
             let rec at i =
               i + n <= h && (String.sub l i n = k || at (i + 1))
             in
             at 0
           in
           if is {|"kind": "overloaded"|} then incr overloaded
         | None -> ());
        close_quiet fd)
      fds;
    close_quiet pin;
    let snap = Serve.Supervisor.stats sup in
    Serve.Supervisor.stop sup;
    let acc = snap.Serve.Supervisor.accepted
    and shed = snap.Serve.Supervisor.shed in
    if shed = 0 then failwith "supervisor bench: overload arm never shed";
    if !overloaded = 0 then
      failwith "supervisor bench: no typed overloaded response observed";
    (float_of_int shed /. float_of_int acc, shed, acc)
  in
  Printf.printf
    "  overload: %d/%d connections shed (%.0f%%), typed responses\n%!"
    shed accepted (shed_rate *. 100.);

  (* ---------------------------------------------------------------- *)
  (* report *)

  let json =
    Json.Obj
      (Json.std_header ~schema:"mfti-bench-supervisor/1"
         ~tool:"bench/main.exe supervisor" ~smoke
      @ [ ("clients", Json.Num (float_of_int clients));
        ("requests_per_client", Json.Num (float_of_int per_client));
        ( "throughput",
          Json.Arr
            (List.map
               (fun (w, r) ->
                 Json.Obj
                   [ ("workers", Json.Num (float_of_int w));
                     ("req_per_s", Json.Num (Float.round r)) ])
               rates) );
        ( "overload",
          Json.Obj
            [ ("blast", Json.Num (float_of_int blast));
              ("accepted", Json.Num (float_of_int accepted));
              ("shed", Json.Num (float_of_int shed));
              ("shed_rate", Json.Num shed_rate) ] ) ])
  in
  let path =
    if smoke then "BENCH_supervisor.smoke.json" else "BENCH_supervisor.json"
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  if smoke then begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let parsed = Json.parse text in
    List.iter
      (fun field ->
        if Json.member field parsed = None then
          failwith ("supervisor bench: JSON missing " ^ field))
      [ "schema"; "clients"; "requests_per_client"; "throughput"; "overload" ];
    (match Json.member "schema" parsed with
     | Some (Json.Str "mfti-bench-supervisor/1") -> ()
     | _ -> failwith "supervisor bench: wrong schema tag");
    (match Json.member "throughput" parsed with
     | Some (Json.Arr (_ :: _ as rows)) ->
       List.iter
         (fun r ->
           List.iter
             (fun field ->
               if Json.member field r = None then
                 failwith ("supervisor bench: JSON row missing " ^ field))
             [ "workers"; "req_per_s" ])
         rows
     | _ -> failwith "supervisor bench: JSON missing throughput rows");
    (match Json.member "overload" parsed with
     | Some o ->
       (match Json.member "shed_rate" o with
        | Some (Json.Num r) when r > 0. -> ()
        | _ -> failwith "supervisor bench: shed_rate missing or zero")
     | None -> failwith "supervisor bench: JSON missing overload block");
    Printf.printf "smoke: JSON parses, all rows well-formed\n%!"
  end;
  (* clean the temp root *)
  Array.iter
    (fun f -> try Sys.remove (Filename.concat root f) with Sys_error _ -> ())
    (try Sys.readdir root with Sys_error _ -> [||]);
  (try Unix.rmdir root with Unix.Unix_error _ -> ())
