(* Routing-tier benchmark: end-to-end request throughput through the
   router at 1, 2 and 4 replicas, the eval-grid coalescing hit rate
   under a concurrent burst, and the binary-vs-JSON frame size for a
   grid response.

   The replica arms measure what sharding actually buys on one box:
   cache affinity, not parallelism.  The model set is deliberately
   larger than one replica's LRU budget (each replica's cache holds ~3
   of the 12 models), and clients cycle through the models round-robin
   — the LRU's worst case.  One replica therefore reloads and recompiles
   an artifact on almost every request, while four replicas each see
   only their hash shard, which fits in cache, so nearly every request
   is a cache hit.  Clients are systhreads hammering a real Unix-socket
   router in strict request/response over persistent connections, so
   the numbers include framing, routing, pooling and demux.

   Writes BENCH_router.json (or BENCH_router.smoke.json with --smoke,
   which also validates the committed full report: throughput rows at
   1/2/4 replicas, 1->4 scaling >= 2.5x, coalescing hit rate > 0, and
   binary frames smaller than JSON). *)

open Statespace

module Json = Bjson

(* ------------------------------------------------------------------ *)
(* Raw socket client *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_raw fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let recv_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i -> Some (String.sub s 0 i)
    | None ->
      (match Unix.read fd chunk 0 (Bytes.length chunk) with
       | 0 -> None
       | k -> Buffer.add_subbytes buf chunk 0 k; go ()
       | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
         None)
  in
  go ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let is_ok l =
  String.length l >= 11 && String.sub l 0 11 = {|{"ok": true|}

(* ------------------------------------------------------------------ *)

let run ?(smoke = false) () =
  Util.heading
    (if smoke then "router benchmark (smoke)" else "router benchmark");
  let clients = 4 in
  let per_client = if smoke then 30 else 200 in
  let models = 12 in
  let replica_arms = [ 1; 2; 4 ] in

  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mfti_router_bench_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sys =
    Random_sys.generate
      { Random_sys.order = 40; ports = 2; rank_d = 1; freq_lo = 1e6;
        freq_hi = 1e10; damping = 0.05; seed = 42 }
  in
  let art = Serve.Artifact.v ~name:"bench" ~fit_err:0.
      (Mfti.Engine.Model.make ~rank:40 sys)
  in
  for i = 0 to models - 1 do
    Serve.Artifact.save
      (Filename.concat root (Printf.sprintf "m%d.mfti" i))
      art
  done;
  let file_bytes = (Unix.stat (Filename.concat root "m0.mfti")).Unix.st_size in
  (* each replica's LRU holds ~3 of the 12 models: one replica thrashes
     on a round-robin workload, four hold their shards resident *)
  let cache_bytes = 7 * file_bytes / 2 in

  let req_of m =
    Printf.sprintf
      {|{"op":"eval-grid","model":"m%d","freqs":[1e7,3e7,1e8,3e8,1e9,3e9,1e10,2e10]}|}
      m
    ^ "\n"
  in

  let router_config n =
    { Serve.Router.default_config with
      probe_interval_ms = 500; request_timeout_ms = 20_000;
      max_conns = 64; max_failover = min 2 (n - 1) }
  in

  let with_fleet ?(hold_ms = 0) n f =
    let paths =
      List.init n (fun i ->
          Filename.concat root (Printf.sprintf "r%d_%d.sock" n i))
    in
    let sups =
      List.map
        (fun path ->
          let srv = Serve.Server.create ~root ~cache_bytes () in
          let config =
            (* enough workers for the router's pooled upstream
               connections (4) plus a fresh health-probe connection,
               or the probes starve behind persistent conns and the
               replica is wrongly marked down *)
            { Serve.Supervisor.default_config with
              workers = 8; queue = 64; request_timeout_ms = 20_000;
              drain_ms = 1_000 }
          in
          Serve.Supervisor.start ~config srv
            ~listen:(Serve.Supervisor.Unix_path path))
        paths
    in
    let rpath = Filename.concat root (Printf.sprintf "router%d.sock" n) in
    let router =
      Serve.Router.start
        ~config:{ (router_config n) with coalesce_hold_ms = hold_ms }
        ~listen:(Serve.Supervisor.Unix_path rpath) ~replicas:paths ()
    in
    Fun.protect
      ~finally:(fun () ->
        Serve.Router.stop router;
        List.iter Serve.Supervisor.stop sups)
      (fun () -> f rpath router)
  in

  (* ---------------------------------------------------------------- *)
  (* throughput arms *)

  let throughput n =
    with_fleet n @@ fun rpath _router ->
    let failures = Atomic.make 0 in
    let body c =
      let fd = connect rpath in
      for k = 0 to per_client - 1 do
        (* cycle the model set: the worst case for a too-small LRU *)
        send_raw fd (req_of ((c + (clients * k)) mod models));
        match recv_line fd with
        | Some l when is_ok l -> ()
        | _ -> Atomic.incr failures
      done;
      close_quiet fd
    in
    let t0 = Unix.gettimeofday () in
    let ths = List.init clients (fun c -> Thread.create body c) in
    List.iter Thread.join ths;
    let dt = Unix.gettimeofday () -. t0 in
    if Atomic.get failures > 0 then
      failwith
        (Printf.sprintf "router bench: %d requests failed at %d replicas"
           (Atomic.get failures) n);
    float_of_int (clients * per_client) /. dt
  in
  let rates = List.map (fun n -> (n, throughput n)) replica_arms in
  List.iter
    (fun (n, r) ->
      Printf.printf "  %d replica%s: %8.0f req/s\n%!" n
        (if n = 1 then " " else "s") r)
    rates;
  let rate_of n = List.assoc n rates in
  let scaling = rate_of 4 /. rate_of 1 in
  Printf.printf "  scaling 1 -> 4 replicas: %.2fx\n%!" scaling;

  (* ---------------------------------------------------------------- *)
  (* coalescing arm: concurrent identical grids ride one batch *)

  let burst = 8 in
  let rounds = if smoke then 5 else 20 in
  let batches, hits, hit_rate =
    with_fleet ~hold_ms:25 1 @@ fun rpath router ->
    (* warm the model so the batch upstream call is cheap *)
    let fd = connect rpath in
    send_raw fd (req_of 0);
    ignore (recv_line fd);
    close_quiet fd;
    let s0 = Serve.Router.stats router in
    for _ = 1 to rounds do
      let ths =
        List.init burst (fun _ ->
            Thread.create
              (fun () ->
                let fd = connect rpath in
                send_raw fd (req_of 0);
                (match recv_line fd with
                 | Some l when is_ok l -> ()
                 | _ -> failwith "router bench: coalesced request failed");
                close_quiet fd)
              ())
      in
      List.iter Thread.join ths
    done;
    let s1 = Serve.Router.stats router in
    let batches =
      s1.Serve.Router.rt_coalesce_batches - s0.Serve.Router.rt_coalesce_batches
    and hits =
      s1.Serve.Router.rt_coalesce_hits - s0.Serve.Router.rt_coalesce_hits
    in
    if hits < 1 then failwith "router bench: coalescing never hit";
    (batches, hits, float_of_int hits /. float_of_int (batches + hits))
  in
  Printf.printf
    "  coalescing: %d upstream batches, %d riders (%.0f%% hit rate)\n%!"
    batches hits (hit_rate *. 100.);

  (* ---------------------------------------------------------------- *)
  (* frame-size arm: the same grid response over both framings *)

  let grid_points = 256 in
  let json_bytes, binary_bytes =
    with_fleet 1 @@ fun rpath _router ->
    let freqs =
      String.concat ","
        (List.init grid_points (fun i ->
             Printf.sprintf "%.6e" (1e7 +. (float_of_int i *. 7.3e7))))
    in
    let req =
      Printf.sprintf {|{"op":"eval-grid","model":"m0","freqs":[%s]}|} freqs
    in
    let fd = connect rpath in
    Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
    (* warm, then measure the JSON line *)
    send_raw fd (req ^ "\n");
    ignore (recv_line fd);
    send_raw fd (req ^ "\n");
    let json_len =
      match recv_line fd with
      | Some l when is_ok l -> String.length l + 1
      | _ -> failwith "router bench: JSON grid request failed"
    in
    (* negotiate binary and measure the same response as a frame *)
    send_raw fd {|{"op":"hello","frames":"binary"}|};
    send_raw fd "\n";
    (match recv_line fd with
     | Some l when is_ok l -> ()
     | _ -> failwith "router bench: hello not acknowledged");
    send_raw fd (Serve.Frame.encode_json req);
    let rd = Serve.Frame.Reader.create () in
    let chunk = Bytes.create 65536 in
    let rec read_frame () =
      match
        Serve.Frame.Reader.next rd ~mode:Serve.Frame.Binary
          ~max_bytes:(1 lsl 26)
      with
      | `Frame (Serve.Frame.Grid_body b) -> String.length b + 5
      | `Frame (Serve.Frame.Json_text _) ->
        failwith "router bench: expected a grid frame"
      | `None ->
        (match Unix.read fd chunk 0 (Bytes.length chunk) with
         | 0 -> failwith "router bench: EOF mid-frame"
         | k ->
           Serve.Frame.Reader.add rd chunk k;
           read_frame ())
      | `Too_long | `Bad _ -> failwith "router bench: bad frame"
    in
    (json_len, read_frame ())
  in
  Printf.printf
    "  frames: %d-point grid is %d bytes as JSON, %d as binary (%.1fx)\n%!"
    grid_points json_bytes binary_bytes
    (float_of_int json_bytes /. float_of_int binary_bytes);

  (* ---------------------------------------------------------------- *)
  (* report *)

  let json =
    Json.Obj
      (Json.std_header ~schema:"mfti-bench-router/1"
         ~tool:"bench/main.exe router" ~smoke
      @ [ ("clients", Json.Num (float_of_int clients));
          ("requests_per_client", Json.Num (float_of_int per_client));
          ("models", Json.Num (float_of_int models));
          ("cache_budget_bytes", Json.Num (float_of_int cache_bytes));
          ("model_file_bytes", Json.Num (float_of_int file_bytes));
          ( "throughput",
            Json.Arr
              (List.map
                 (fun (n, r) ->
                   Json.Obj
                     [ ("replicas", Json.Num (float_of_int n));
                       ("req_per_s", Json.Num (Float.round r)) ])
                 rates) );
          ("scaling_1_to_4", Json.Num scaling);
          ( "coalescing",
            Json.Obj
              [ ("burst", Json.Num (float_of_int burst));
                ("rounds", Json.Num (float_of_int rounds));
                ("batches", Json.Num (float_of_int batches));
                ("hits", Json.Num (float_of_int hits));
                ("hit_rate", Json.Num hit_rate) ] );
          ( "frames",
            Json.Obj
              [ ("grid_points", Json.Num (float_of_int grid_points));
                ("json_bytes", Json.Num (float_of_int json_bytes));
                ("binary_bytes", Json.Num (float_of_int binary_bytes));
                ( "ratio",
                  Json.Num
                    (float_of_int json_bytes /. float_of_int binary_bytes) )
              ] ) ])
  in
  let path = if smoke then "BENCH_router.smoke.json" else "BENCH_router.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path;

  if smoke then begin
    let validate what text =
      let fail fmt = Printf.ksprintf failwith fmt in
      let parsed = Json.parse text in
      List.iter
        (fun field ->
          if Json.member field parsed = None then
            fail "router bench: %s missing %s" what field)
        [ "schema"; "throughput"; "scaling_1_to_4"; "coalescing"; "frames" ];
      (match Json.member "schema" parsed with
       | Some (Json.Str "mfti-bench-router/1") -> ()
       | _ -> fail "router bench: %s has wrong schema tag" what);
      (match Json.member "throughput" parsed with
       | Some (Json.Arr rows) ->
         let seen =
           List.filter_map
             (fun r ->
               match (Json.member "replicas" r, Json.member "req_per_s" r) with
               | Some (Json.Num n), Some (Json.Num rps) when rps > 0. ->
                 Some (int_of_float n)
               | _ -> None)
             rows
         in
         List.iter
           (fun n ->
             if not (List.mem n seen) then
               fail "router bench: %s lacks a %d-replica row" what n)
           [ 1; 2; 4 ]
       | _ -> fail "router bench: %s missing throughput rows" what);
      (match Json.member "coalescing" parsed with
       | Some c ->
         (match Json.member "hit_rate" c with
          | Some (Json.Num r) when r > 0. -> ()
          | _ -> fail "router bench: %s coalescing hit_rate not positive" what)
       | None -> fail "router bench: %s missing coalescing block" what);
      match Json.member "frames" parsed with
      | Some f ->
        (match (Json.member "json_bytes" f, Json.member "binary_bytes" f) with
         | Some (Json.Num j), Some (Json.Num b) when b > 0. && b < j -> ()
         | _ ->
           fail "router bench: %s binary frames not smaller than JSON" what)
      | None -> fail "router bench: %s missing frames block" what
    in
    let read_file p =
      let ic = open_in p in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      text
    in
    validate "smoke report" (read_file path);
    (* the committed full report must still clear the acceptance bars,
       including the 1->4 replica scaling floor *)
    (match
       List.find_opt Sys.file_exists
         [ "BENCH_router.json"; "../BENCH_router.json" ]
     with
     | None -> failwith "router bench: committed BENCH_router.json not found"
     | Some p ->
       let text = read_file p in
       validate "committed report" text;
       (match Json.member "scaling_1_to_4" (Json.parse text) with
        | Some (Json.Num s) when s >= 2.5 -> ()
        | Some (Json.Num s) ->
          failwith
            (Printf.sprintf
               "router bench: committed 1->4 scaling %.2fx below the 2.5x \
                floor"
               s)
        | _ -> failwith "router bench: committed scaling_1_to_4 missing"));
    Printf.printf "smoke: JSON parses, committed report clears the bars\n%!"
  end;

  (* clean the temp root *)
  Array.iter
    (fun f -> try Sys.remove (Filename.concat root f) with Sys_error _ -> ())
    (try Sys.readdir root with Sys_error _ -> [||]);
  (try Unix.rmdir root with Unix.Unix_error _ -> ())
