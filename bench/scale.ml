(* Substrate scaling: dense vs sparse MNA frequency sweeps.

   Not a paper experiment — this documents why the sparse LU exists.
   Plane-grid PDNs grow as nx*ny; dense per-frequency solves are O(n^3)
   while the Gilbert-Peierls path tracks the (near-linear) fill. *)

open Statespace

let sweep_freqs = [| 1e7; 1e8; 5e8; 1e9; 2e9 |]

let run () =
  Util.heading "Scaling: dense vs sparse MNA frequency sweeps";
  Printf.printf "(5 frequency points per sweep; PDN plane grids)\n";
  let rows =
    List.map
      (fun grid ->
        let spec =
          { Rf.Pdn.default_spec with
            nx = grid; ny = grid;
            ports = Stdlib.min 8 (grid * grid);
            decaps = Stdlib.min 6 (grid * grid);
            seed = grid }
        in
        let circuit = Rf.Pdn.build spec in
        let n = Rf.Mna.num_states circuit in
        let g, _ = Rf.Mna.to_sparse circuit in
        let dense, t_dense =
          Util.time_it (fun () -> Rf.Mna.impedance circuit sweep_freqs)
        in
        let sparse, t_sparse =
          Util.time_it (fun () -> Rf.Mna.impedance_sparse circuit sweep_freqs)
        in
        let worst = ref 0. in
        Array.iteri
          (fun k smp ->
            worst :=
              Stdlib.max !worst
                (Linalg.Cmat.norm_fro
                   (Linalg.Cmat.sub smp.Sampling.s sparse.(k).Sampling.s)
                 /. (1. +. Linalg.Cmat.norm_fro smp.Sampling.s)))
          dense;
        [ Printf.sprintf "%dx%d" grid grid;
          string_of_int n;
          string_of_int (Sparse.Scsr.nnz g);
          Util.fmt_time t_dense;
          Util.fmt_time t_sparse;
          Util.fmt_sci !worst ])
      [ 6; 10; 14; 18; 24 ]
  in
  Util.print_table
    ~header:[ "grid"; "states"; "nnz(G)"; "dense sweep(s)"; "sparse sweep(s)";
              "max deviation" ]
    rows;
  Printf.printf
    "(deviation is dense-vs-sparse agreement; both are exact solves)\n%!"
