(* Streaming-session benchmark: adaptive vs uniform frequency selection
   on the synthetic PDN workload, to a fixed hold-out accuracy.

   Both arms stream measurements into an Engine.Session against the
   same PDN oracle (Rf.Pdn.scattering, which evaluates the exact
   descriptor at any requested frequency) and are judged on the same
   dense log-spaced hold-out grid:

     - uniform   marches the sample count up in pairs, each count a
                 fresh log-spaced session, until the hold-out error
                 first reaches the target;
     - adaptive  seeds one session with a small log-spaced batch, then
                 loops Adaptive.suggest -> measure -> append until the
                 same target, so every extra measurement lands where
                 the two half-data surrogates disagree.

   The headline number is the sample ratio adaptive/uniform at equal
   accuracy; the roadmap acceptance bar is <= 0.6, recorded in
   BENCH_session.json.

   Writes BENCH_session.json (or BENCH_session.smoke.json with --smoke,
   which also re-parses the report, validates its fields, and checks
   the committed full report still meets the ratio bar). *)

open Statespace

module Json = Bjson

let fail fmt = Printf.ksprintf failwith fmt

let ok = function
  | Ok v -> v
  | Error e -> fail "session bench: %s" (Linalg.Mfti_error.to_string e)

let wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run ?(smoke = false) () =
  Util.heading
    (if smoke then "streaming-session benchmark (smoke)"
     else "streaming-session benchmark");
  (* 2-port corner of the PDN plane: decap anti-resonances in the tens
     of MHz and the first plane modes near a GHz, so a log-uniform scan
     spends most of its points on the smooth low-frequency shelf. *)
  let spec = { Rf.Pdn.default_spec with ports = 2; decaps = 3; seed = 7 } in
  let f_lo = 1e6 and f_hi = 2e9 in
  let holdout_n = if smoke then 41 else 101 in
  (* the log-uniform scan plateaus near 3e-4 until ~34 samples finally
     resolve the last plane mode; the adaptive arm clears 2e-5 as soon
     as the surrogates agree, around a dozen samples *)
  let target = if smoke then 5e-2 else 2e-5 in
  let seed_n = 8 in           (* Adaptive.suggest needs >= 8 samples *)
  let step = 2 in             (* one completed pair per adaptive round *)
  let cap = if smoke then 40 else 96 in
  let options =
    { Mfti.Engine.default_options with
      rank_rule = Mfti.Svd_reduce.Tol 1e-9;
      certify = Mfti.Certify.Off }
  in
  let aopts =
    { Mfti.Adaptive.default_options with
      surrogate = options; count = step }
  in
  let oracle freqs = Rf.Pdn.scattering spec ~z0:50. freqs in
  (* hold-out points sit at their own log spacing, coprime with both
     the uniform counts and the adaptive candidate grid *)
  let holdout = oracle (Sampling.logspace f_lo f_hi holdout_n) in
  let p, m = spec.Rf.Pdn.ports, spec.Rf.Pdn.ports in
  Printf.printf
    "%dx%d PDN ports over [%.0e, %.0e] Hz, %d hold-out points, target %.1e\n%!"
    p m f_lo f_hi holdout_n target;

  let open_session () =
    let sess = ok (Mfti.Engine.Session.open_ ~options ~inputs:m ~outputs:p ()) in
    ignore (ok (Mfti.Engine.Session.append ~holdout:true sess holdout));
    sess
  in
  let append sess freqs =
    ignore (ok (Mfti.Engine.Session.append sess (oracle freqs)))
  in
  let holdout_err sess =
    match ok (Mfti.Engine.Session.holdout_err sess) with
    | Some e -> e
    | None -> fail "session bench: hold-out error unavailable"
  in

  (* ---------------------------------------------------------------- *)
  (* uniform arm: fresh log-spaced session per count *)

  let uniform_err n =
    let sess = open_session () in
    append sess (Sampling.logspace f_lo f_hi n);
    holdout_err sess
  in
  let (uniform_n, uniform_e, uniform_trace), uniform_s =
    wall (fun () ->
        let rec march n trace =
          if n > cap then
            fail "session bench: uniform arm missed %.1e by %d samples"
              target cap;
          let e = uniform_err n in
          let trace = (n, e) :: trace in
          if e <= target then (n, e, List.rev trace)
          else march (n + step) trace
        in
        march seed_n [])
  in

  (* ---------------------------------------------------------------- *)
  (* adaptive arm: one live session, suggest -> measure -> append *)

  let (adaptive_n, adaptive_e, adaptive_trace), adaptive_s =
    wall (fun () ->
        let sess = open_session () in
        append sess (Sampling.logspace f_lo f_hi seed_n);
        let rec refine trace =
          let e = holdout_err sess in
          let n = Mfti.Engine.Session.size sess in
          let trace = (n, e) :: trace in
          if e <= target then (n, e, List.rev trace)
          else if n + step > cap then
            fail "session bench: adaptive arm missed %.1e by %d samples"
              target cap
          else begin
            let scores =
              ok (Mfti.Adaptive.suggest ~options:aopts
                    (Mfti.Engine.Session.fit_samples sess))
            in
            if scores = [] then
              fail "session bench: no adaptive suggestions at %d samples" n;
            (* an odd suggestion round would leave a pending sample, so
               pad the pair from the log grid midpoint *)
            let freqs =
              List.map (fun s -> s.Mfti.Adaptive.freq) scores
            in
            let freqs =
              if List.length freqs land 1 = 0 then freqs
              else freqs @ [ Float.sqrt (f_lo *. f_hi) ]
            in
            append sess (Array.of_list freqs);
            refine trace
          end
        in
        refine [])
  in

  let ratio = float_of_int adaptive_n /. float_of_int uniform_n in
  let max_ratio = 0.6 in
  Util.print_table
    ~header:[ "arm"; "samples"; "hold-out err"; "wall" ]
    [ [ "uniform"; string_of_int uniform_n;
        Printf.sprintf "%.2e" uniform_e;
        Printf.sprintf "%.2f s" uniform_s ];
      [ "adaptive"; string_of_int adaptive_n;
        Printf.sprintf "%.2e" adaptive_e;
        Printf.sprintf "%.2f s" adaptive_s ] ];
  Printf.printf "  sample ratio adaptive/uniform: %.2f (bar %.2f)\n%!"
    ratio max_ratio;
  if not smoke && ratio > max_ratio then
    fail "session bench: ratio %.2f exceeds the %.2f acceptance bar"
      ratio max_ratio;

  (* ---------------------------------------------------------------- *)
  (* report *)

  let trace_json trace =
    Json.Arr
      (List.map
         (fun (n, e) ->
           Json.Obj
             [ ("samples", Json.Num (float_of_int n));
               ("holdout_err", Json.Num e) ])
         trace)
  in
  let arm name n e s trace =
    Json.Obj
      [ ("arm", Json.Str name);
        ("samples", Json.Num (float_of_int n));
        ("holdout_err", Json.Num e);
        ("wall_s", Json.Num s);
        ("trace", trace_json trace) ]
  in
  let json =
    Json.Obj
      (Json.std_header ~schema:"mfti-bench-session/1"
         ~tool:"bench/main.exe session" ~smoke
      @ [ ("workload", Json.Str "pdn");
        ("ports", Json.Num (float_of_int p));
        ("f_lo", Json.Num f_lo);
        ("f_hi", Json.Num f_hi);
        ("holdout_points", Json.Num (float_of_int holdout_n));
        ("target_err", Json.Num target);
        ("uniform_samples", Json.Num (float_of_int uniform_n));
        ("adaptive_samples", Json.Num (float_of_int adaptive_n));
        ("ratio", Json.Num ratio);
        ("max_ratio", Json.Num max_ratio);
        ( "results",
          Json.Arr
            [ arm "uniform" uniform_n uniform_e uniform_s uniform_trace;
              arm "adaptive" adaptive_n adaptive_e adaptive_s adaptive_trace
            ] ) ])
  in
  let path =
    if smoke then "BENCH_session.smoke.json" else "BENCH_session.json"
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (adaptive %d vs uniform %d samples, %.2fx)\n%!"
    path adaptive_n uniform_n ratio;

  if smoke then begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let parsed = Json.parse text in
    List.iter
      (fun field ->
        if Json.member field parsed = None then
          failwith ("session bench: JSON missing " ^ field))
      [ "schema"; "workload"; "target_err"; "uniform_samples";
        "adaptive_samples"; "ratio"; "max_ratio"; "results" ];
    (match Json.member "schema" parsed with
     | Some (Json.Str "mfti-bench-session/1") -> ()
     | _ -> failwith "session bench: wrong schema tag");
    (match Json.member "results" parsed with
     | Some (Json.Arr ([ _; _ ] as rs)) ->
       List.iter
         (fun r ->
           List.iter
             (fun field ->
               if Json.member field r = None then
                 failwith ("session bench: JSON row missing " ^ field))
             [ "arm"; "samples"; "holdout_err"; "wall_s"; "trace" ])
         rs
     | _ -> failwith "session bench: JSON needs exactly two arm rows");
    (* the committed full report must still clear the acceptance bar *)
    let committed =
      List.find_opt Sys.file_exists
        [ "BENCH_session.json"; "../BENCH_session.json" ]
    in
    (match committed with
     | None -> failwith "session bench: committed BENCH_session.json not found"
     | Some file ->
       let ic = open_in file in
       let len = in_channel_length ic in
       let text = really_input_string ic len in
       close_in ic;
       let full = Json.parse text in
       let num field =
         match Json.member field full with
         | Some (Json.Num v) -> v
         | _ -> fail "session bench: committed report missing %s" field
       in
       let ratio = num "ratio" and bar = num "max_ratio" in
       if ratio > bar then
         fail
           "session bench: committed BENCH_session.json ratio %.2f exceeds \
            the %.2f bar"
           ratio bar;
       Printf.printf
         "smoke: JSON parses, committed ratio %.2f within the %.2f bar\n%!"
         ratio bar)
  end
