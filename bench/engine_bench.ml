(* Staged-engine benchmark: recursive Algorithm 2 with batch assembly
   (build the full Loewner pencil up front, sub-select per iteration)
   against incremental assembly (append one block row/column per
   selected unit, O(k) new divided differences per append).

   Both arms run the identical iteration schedule — same unit ranking,
   same per-iteration SVD and residual scoring — so the wall-clock gap
   isolates the assembly strategy.  The two fits are checked
   bit-identical before timing starts; a speedup over a result that
   differed would be meaningless.

   Timing methodology matches bench/kernels.ml: every repetition runs
   both arms back-to-back (batch first) and the reported speedup is the
   median of the per-repetition paired ratios.  Wall clock via
   [Unix.gettimeofday].

   Writes BENCH_engine.json (or BENCH_engine.smoke.json with --smoke,
   which also re-parses the report and validates its fields). *)

open Statespace
open Mfti
open Linalg

module Json = Bjson

let wall f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  Unix.gettimeofday () -. t0

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

(* The two arms must agree bitwise: same realization, same selection
   trace.  NaN entries in the residual history (budget exhaustion
   markers) compare equal to each other. *)
let check_identical (a : Engine.fit) (b : Engine.fit) =
  let fail what = failwith ("engine bench: arms differ in " ^ what) in
  if a.Engine.rank <> b.Engine.rank then fail "rank";
  if a.Engine.iterations <> b.Engine.iterations then fail "iterations";
  if a.Engine.selected_units <> b.Engine.selected_units then
    fail "selected_units";
  if Array.length a.Engine.history <> Array.length b.Engine.history then
    fail "history length";
  Array.iteri
    (fun i x ->
      let y = b.Engine.history.(i) in
      let same = (Float.is_nan x && Float.is_nan y) || x = y in
      if not same then fail (Printf.sprintf "history[%d]" i))
    a.Engine.history;
  let da = a.Engine.model and db = b.Engine.model in
  List.iter
    (fun (name, ma, mb) ->
      if not (Cmat.equal ~tol:0. ma mb) then fail name)
    [ ("E", da.Descriptor.e, db.Descriptor.e);
      ("A", da.Descriptor.a, db.Descriptor.a);
      ("B", da.Descriptor.b, db.Descriptor.b);
      ("C", da.Descriptor.c, db.Descriptor.c);
      ("D", da.Descriptor.d, db.Descriptor.d) ];
  Printf.printf "  check %-28s identical (order %d, %d rounds)\n%!"
    "batch vs incremental" a.Engine.rank (Array.length a.Engine.history)

let stage_line label (fit : Engine.fit) =
  Printf.printf "  %-11s" (label ^ ":");
  List.iter
    (fun (stage, dt) -> Printf.printf " %s %.3fs" stage dt)
    fit.Engine.timings;
  Printf.printf "\n%!"

let run ?(smoke = false) () =
  Util.heading
    (if smoke then "staged-engine benchmark (smoke)"
     else "staged-engine benchmark");
  let reps = if smoke then 2 else 5 in
  let ndom = if smoke then 2 else 4 in
  let ports = if smoke then 2 else 8 in
  let order = if smoke then 12 else 48 in
  let nsamples = if smoke then 48 else 768 in
  let max_iterations = if smoke then 4 else 20 in
  Parallel.set_domain_count ndom;
  let sys =
    Random_sys.generate
      { Random_sys.order; ports; rank_d = ports / 2;
        freq_lo = 1e6; freq_hi = 1e10; damping = 0.05; seed = 42 }
  in
  let samples =
    Sampling.sample_system sys (Sampling.logspace 1e6 1e10 nsamples)
  in
  let dataset = Dataset.of_samples samples in
  let options =
    { Engine.default_recursive_options with
      batch = 2;
      threshold = 0.;        (* never converge early: fixed iteration count *)
      max_iterations;
      divergence_factor = 1e12;
      probe = Some 16 }
  in
  let run_arm asm () =
    Engine.run_exn ~options ~strategy:(Engine.Recursive asm) dataset
  in
  Printf.printf "%d-port system, order %d, %d samples, batch %d, %d iterations\n%!"
    ports order nsamples options.Engine.batch max_iterations;

  (* correctness gate, and one fit per arm for the stage breakdown *)
  let batch_fit = run_arm Engine.Batch () in
  let incr_fit = run_arm Engine.Incremental () in
  check_identical batch_fit incr_fit;
  stage_line "batch" batch_fit;
  stage_line "incremental" incr_fit;

  (* paired timing: batch arm is the baseline *)
  let batch_t = Array.make reps 0. and incr_t = Array.make reps 0. in
  for rep = 0 to reps - 1 do
    batch_t.(rep) <- wall (run_arm Engine.Batch);
    incr_t.(rep) <- wall (run_arm Engine.Incremental)
  done;
  let batch_s = median batch_t and incr_s = median incr_t in
  let speedup =
    median (Array.init reps (fun r -> batch_t.(r) /. incr_t.(r)))
  in

  (* certification arms: check-only vs full repair on a model pushed
     mildly (sigma_max peak ~1.05) outside the passive region — the
     curable regime the engine's certify stage handles on noisy data *)
  let corder = if smoke then 12 else 40 in
  let cports = if smoke then 2 else 8 in
  let cfreqs = Sampling.logspace 1e6 1e10 (if smoke then 48 else 256) in
  let violator =
    let base =
      Random_sys.generate
        { Random_sys.order = corder; ports = cports; rank_d = cports / 2;
          freq_lo = 1e6; freq_hi = 1e10; damping = 0.05; seed = 7 }
    in
    let peak = 1. +. Rf.Passivity.max_violation base ~freqs:cfreqs in
    let t = 1.05 /. peak in
    Descriptor.create ~e:base.Descriptor.e ~a:base.Descriptor.a
      ~b:base.Descriptor.b
      ~c:(Cmat.scale_float t base.Descriptor.c)
      ~d:(Cmat.scale_float t base.Descriptor.d)
  in
  let certify_arm mode () =
    match
      Certify.run ~options:{ Certify.default_options with mode }
        ~freqs:cfreqs violator
    with
    | Ok r -> r
    | Error e -> failwith ("engine bench: certify " ^ Mfti_error.to_string e)
  in
  (* correctness gate: check sees the violation, repair cures it *)
  (match (certify_arm Certify.Check (), certify_arm Certify.Repair ()) with
   | (_, Some before), (_, Some after) ->
     if Certify.Certificate.passed before then
       failwith "engine bench: violator passed the check arm";
     if not (Certify.Certificate.passed after) then
       failwith "engine bench: repair arm failed to certify";
     Printf.printf "  certify %-24s pre %.3g -> post %.3g (%d repairs)\n%!"
       (Printf.sprintf "(order %d, %d ports)" corder cports)
       before.Certify.Certificate.worst_margin
       after.Certify.Certificate.worst_margin
       after.Certify.Certificate.repair_iterations
   | _ -> failwith "engine bench: certify arm returned no certificate");
  let check_t = Array.make reps 0. and repair_t = Array.make reps 0. in
  for rep = 0 to reps - 1 do
    check_t.(rep) <- wall (certify_arm Certify.Check);
    repair_t.(rep) <- wall (certify_arm Certify.Repair)
  done;
  let certify_check_s = median check_t in
  let certify_repair_s = median repair_t in
  let repair_ratio =
    median (Array.init reps (fun r -> repair_t.(r) /. check_t.(r)))
  in
  (* [fit.iterations] is the iteration the returned (best) model came
     from; the schedule length — one residual-history entry per round —
     is what the wall-clock covers. *)
  let iters_run = Array.length batch_fit.Engine.history in
  let size =
    Printf.sprintf "%dports_%dsamples_%diters" ports nsamples iters_run
  in
  let csize = Printf.sprintf "%dports_order%d" cports corder in
  Util.print_table
    ~header:[ "op"; "size"; "domains"; "median"; "speedup" ]
    [ [ "algorithm2_batch"; size; string_of_int ndom;
        Printf.sprintf "%.3f ms" (batch_s *. 1e3); "1.00x" ];
      [ "algorithm2_incremental"; size; string_of_int ndom;
        Printf.sprintf "%.3f ms" (incr_s *. 1e3);
        Printf.sprintf "%.2fx" speedup ];
      [ "certify_check"; csize; string_of_int ndom;
        Printf.sprintf "%.3f ms" (certify_check_s *. 1e3); "1.00x" ];
      [ "certify_repair"; csize; string_of_int ndom;
        Printf.sprintf "%.3f ms" (certify_repair_s *. 1e3);
        Printf.sprintf "%.2fx" repair_ratio ] ];

  let row ?(sz = size) op med spd =
    Json.Obj
      [ ("op", Json.Str op);
        ("size", Json.Str sz);
        ("domains", Json.Num (float_of_int ndom));
        ("median_ns", Json.Num (Float.round (med *. 1e9)));
        ("speedup", Json.Num spd) ]
  in
  let json =
    Json.Obj
      (Json.std_header ~schema:"mfti-bench-engine/1"
         ~tool:"bench/main.exe engine" ~smoke
      @ [ ("reps", Json.Num (float_of_int reps));
        ("domains", Json.Num (float_of_int ndom));
        ("ports", Json.Num (float_of_int ports));
        ("samples", Json.Num (float_of_int nsamples));
        ("iterations", Json.Num (float_of_int iters_run));
        ("selected_units", Json.Num (float_of_int batch_fit.Engine.selected_units));
        ("total_units", Json.Num (float_of_int batch_fit.Engine.total_units));
        ("batch_s", Json.Num batch_s);
        ("incremental_s", Json.Num incr_s);
        ("speedup", Json.Num speedup);
        ("certify_check_s", Json.Num certify_check_s);
        ("certify_repair_s", Json.Num certify_repair_s);
        ( "results",
          Json.Arr
            [ row "algorithm2_batch" batch_s 1.0;
              row "algorithm2_incremental" incr_s speedup;
              row ~sz:csize "certify_check" certify_check_s 1.0;
              row ~sz:csize "certify_repair" certify_repair_s repair_ratio ] ) ])
  in
  let path = if smoke then "BENCH_engine.smoke.json" else "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (speedup %.2fx)\n%!" path speedup;
  if smoke then begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let parsed = Json.parse text in
    List.iter
      (fun field ->
        if Json.member field parsed = None then
          failwith ("engine bench: JSON missing " ^ field))
      [ "schema"; "iterations"; "batch_s"; "incremental_s"; "speedup";
        "certify_check_s"; "certify_repair_s" ];
    (match Json.member "results" parsed with
     | Some (Json.Arr (_ :: _ as rs)) ->
       List.iter
         (fun r ->
           List.iter
             (fun field ->
               if Json.member field r = None then
                 failwith ("engine bench: JSON row missing " ^ field))
             [ "op"; "size"; "domains"; "median_ns"; "speedup" ])
         rs
     | _ -> failwith "engine bench: JSON missing results array");
    Printf.printf "smoke: JSON parses, all rows well-formed\n%!"
  end;
  Parallel.set_domain_count 1
