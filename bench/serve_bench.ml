(* Serving benchmark: compiled pole-residue evaluation against the
   naive per-point LU solve of (sE - A), on the grid sizes an
   evaluation server actually sees.

   Three arms over the same frequency grid:
     - direct_lu            one LU factorization + solve per point
     - compiled_domains1    pole-residue evaluation, sequential
     - compiled_domainsN    pole-residue evaluation over the domain pool

   Correctness is gated before timing: the compiled evaluator must
   reproduce the direct evaluation to 1e-10 relative error at every
   grid point, and must actually be in pole-residue mode — timing a
   fallback that secretly runs the baseline would report 1.00x as if it
   were meaningful.

   Timing methodology matches bench/engine_bench.ml: every repetition
   runs all arms back-to-back and the reported speedup is the median of
   the per-repetition paired ratios against the direct-LU baseline.

   The server path is measured too: a packed artifact served from a
   temp root through Server.handle_line, cold (cache miss: disk load +
   checksum + compile) vs warm (cache hit).

   Writes BENCH_serve.json (or BENCH_serve.smoke.json with --smoke,
   which also re-parses the report and validates its fields). *)

open Statespace
open Linalg

module Json = Bjson

let wall f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  Unix.gettimeofday () -. t0

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

let run ?(smoke = false) () =
  Util.heading
    (if smoke then "serving benchmark (smoke)" else "serving benchmark");
  let reps = if smoke then 2 else 5 in
  let ndom = if smoke then 2 else 4 in
  let ports = if smoke then 2 else 8 in
  let order = if smoke then 12 else 40 in
  let npoints = if smoke then 64 else 1024 in
  let sys =
    Random_sys.generate
      { Random_sys.order; ports; rank_d = ports / 2;
        freq_lo = 1e6; freq_hi = 1e10; damping = 0.05; seed = 42 }
  in
  let freqs = Sampling.logspace 1e6 1e10 npoints in
  Printf.printf "%d-port system, order %d, %d grid points\n%!"
    ports order npoints;

  (* ---------------------------------------------------------------- *)
  (* correctness gate *)

  let compiled = Serve.Compiled.of_descriptor ~tol:1e-11 sys in
  (match Serve.Compiled.mode compiled with
   | Serve.Compiled.Pole_residue -> ()
   | Serve.Compiled.Direct ->
     failwith "serve bench: compilation fell back to direct mode");
  let direct_grid () = Array.map (Descriptor.eval_freq sys) freqs in
  let exact = direct_grid () in
  let got = Serve.Compiled.eval_grid compiled freqs in
  let worst = ref 0. in
  Array.iteri
    (fun i h ->
      let e =
        Cmat.norm_fro (Cmat.sub got.(i) h)
        /. Stdlib.max (Cmat.norm_fro h) 1e-300
      in
      if e > !worst then worst := e)
    exact;
  if !worst > 1e-10 then
    failwith
      (Printf.sprintf "serve bench: compiled eval off by %.3e (> 1e-10)"
         !worst);
  Printf.printf "  check %-28s max rel err %.2e over %d points\n%!"
    "compiled vs direct LU" !worst npoints;

  (* ---------------------------------------------------------------- *)
  (* paired timing *)

  let compiled_grid () = Serve.Compiled.eval_grid compiled freqs in
  let direct_t = Array.make reps 0.
  and seq_t = Array.make reps 0.
  and par_t = Array.make reps 0. in
  Parallel.set_domain_count ndom;
  ignore (Sys.opaque_identity (compiled_grid ()));  (* pool spin-up *)
  for rep = 0 to reps - 1 do
    direct_t.(rep) <- wall direct_grid;
    seq_t.(rep) <- wall (fun () -> Parallel.with_sequential compiled_grid);
    par_t.(rep) <- wall compiled_grid
  done;
  let direct_s = median direct_t
  and seq_s = median seq_t
  and par_s = median par_t in
  let ratio num den = median (Array.init reps (fun r -> num.(r) /. den.(r))) in
  let seq_speedup = ratio direct_t seq_t in
  let par_speedup = ratio direct_t par_t in
  let size = Printf.sprintf "order%d_%dports_%dpoints" order ports npoints in
  Util.print_table
    ~header:[ "op"; "size"; "domains"; "median"; "speedup" ]
    [ [ "direct_lu"; size; "1"; Printf.sprintf "%.3f ms" (direct_s *. 1e3);
        "1.00x" ];
      [ "compiled_domains1"; size; "1";
        Printf.sprintf "%.3f ms" (seq_s *. 1e3);
        Printf.sprintf "%.2fx" seq_speedup ];
      [ Printf.sprintf "compiled_domains%d" ndom; size; string_of_int ndom;
        Printf.sprintf "%.3f ms" (par_s *. 1e3);
        Printf.sprintf "%.2fx" par_speedup ] ];

  (* ---------------------------------------------------------------- *)
  (* server path: cold load vs cache hit through the protocol *)

  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mfti_serve_bench_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let art =
    Serve.Artifact.v ~name:"bench" ~fit_err:0.
      (Mfti.Engine.Model.make ~rank:order sys)
  in
  Serve.Artifact.save (Filename.concat root "bench.mfti") art;
  let eval_req =
    Json.to_string
      (Json.Obj
         [ ("op", Json.Str "eval-grid");
           ("model", Json.Str "bench");
           ( "freqs",
             Json.Arr
               (Array.to_list (Array.map (fun f -> Json.Num f) freqs)) ) ])
  in
  let request srv line =
    let response, _ = Serve.Server.handle_line srv line in
    if not (String.length response >= 11 && String.sub response 0 11 = {|{"ok": true|})
    then failwith ("serve bench: request failed: " ^ response)
  in
  let cold () =
    let srv = Serve.Server.create ~root () in
    request srv {|{"op":"model-info","model":"bench"}|}
  in
  let warm_srv = Serve.Server.create ~root () in
  request warm_srv {|{"op":"model-info","model":"bench"}|};
  let cold_t = Array.init reps (fun _ -> wall cold) in
  let hit_t =
    Array.init reps (fun _ ->
        wall (fun () ->
            request warm_srv {|{"op":"model-info","model":"bench"}|}))
  in
  let eval_t = Array.init reps (fun _ -> wall (fun () -> request warm_srv eval_req)) in
  let cold_s = median cold_t and hit_s = median hit_t in
  let eval_s = median eval_t in
  Printf.printf
    "\n  server: cold load %.3f ms, cache hit %.3f ms, eval-grid %.3f ms\n%!"
    (cold_s *. 1e3) (hit_s *. 1e3) (eval_s *. 1e3);
  Sys.remove (Filename.concat root "bench.mfti");
  (try Unix.rmdir root with Unix.Unix_error _ -> ());

  (* ---------------------------------------------------------------- *)
  (* report *)

  let row op domains med spd =
    Json.Obj
      [ ("op", Json.Str op);
        ("size", Json.Str size);
        ("domains", Json.Num (float_of_int domains));
        ("median_ns", Json.Num (Float.round (med *. 1e9)));
        ("speedup", Json.Num spd) ]
  in
  let json =
    Json.Obj
      (Json.std_header ~schema:"mfti-bench-serve/1"
         ~tool:"bench/main.exe serve" ~smoke
      @ [ ("reps", Json.Num (float_of_int reps));
        ("domains", Json.Num (float_of_int ndom));
        ("ports", Json.Num (float_of_int ports));
        ("order", Json.Num (float_of_int order));
        ("grid_points", Json.Num (float_of_int npoints));
        ("max_rel_err", Json.Num !worst);
        ("direct_s", Json.Num direct_s);
        ("compiled_seq_s", Json.Num seq_s);
        ("compiled_par_s", Json.Num par_s);
        ("compiled_speedup", Json.Num seq_speedup);
        ("parallel_speedup", Json.Num par_speedup);
        ("server_cold_s", Json.Num cold_s);
        ("server_hit_s", Json.Num hit_s);
        ("server_eval_s", Json.Num eval_s);
        ( "results",
          Json.Arr
            [ row "direct_lu" 1 direct_s 1.0;
              row "compiled_domains1" 1 seq_s seq_speedup;
              row (Printf.sprintf "compiled_domains%d" ndom) ndom par_s
                par_speedup ] ) ])
  in
  let path = if smoke then "BENCH_serve.smoke.json" else "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (compiled %.2fx, parallel %.2fx)\n%!" path
    seq_speedup par_speedup;
  if smoke then begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let parsed = Json.parse text in
    List.iter
      (fun field ->
        if Json.member field parsed = None then
          failwith ("serve bench: JSON missing " ^ field))
      [ "schema"; "grid_points"; "max_rel_err"; "direct_s"; "compiled_seq_s";
        "compiled_par_s"; "compiled_speedup"; "parallel_speedup";
        "server_cold_s"; "server_hit_s" ];
    (match Json.member "schema" parsed with
     | Some (Json.Str "mfti-bench-serve/1") -> ()
     | _ -> failwith "serve bench: wrong schema tag");
    (match Json.member "results" parsed with
     | Some (Json.Arr (_ :: _ as rs)) ->
       List.iter
         (fun r ->
           List.iter
             (fun field ->
               if Json.member field r = None then
                 failwith ("serve bench: JSON row missing " ^ field))
             [ "op"; "size"; "domains"; "median_ns"; "speedup" ])
         rs
     | _ -> failwith "serve bench: JSON missing results array");
    Printf.printf "smoke: JSON parses, all rows well-formed\n%!"
  end;
  Parallel.set_domain_count 1
