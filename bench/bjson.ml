(* The bench reporters' JSON module is the serving layer's: one
   writer/escaper/parser for the whole repo (see lib/serve/sjson.ml).
   Kept as a thin alias so the reporters keep their [Bjson] name. *)

include Serve.Sjson

(* Every BENCH_*.json opens with the same header fields so downstream
   tooling can key on the schema and normalize speedup/throughput
   numbers by the core count that backed the run. *)
let std_header ~schema ~tool ~smoke =
  [ ("schema", Str schema);
    ("generated_by", Str tool);
    ("smoke", Bool smoke);
    ("cpus", Num (float_of_int (Domain.recommended_domain_count ()))) ]
