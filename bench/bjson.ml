(* The bench reporters' JSON module is the serving layer's: one
   writer/escaper/parser for the whole repo (see lib/serve/sjson.ml).
   Kept as a thin alias so the reporters keep their [Bjson] name. *)

include Serve.Sjson
