(* Experiment harness: regenerates every table and figure of the paper.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig1    -- singular-value patterns
     dune exec bench/main.exe -- fig2    -- Bode comparison
     dune exec bench/main.exe -- table1  -- noisy-PDN algorithm table
     dune exec bench/main.exe -- minsample -- Theorem 3.5 / sampling sweep
     dune exec bench/main.exe -- ablation  -- design-choice ablations
     dune exec bench/main.exe -- scale     -- dense vs sparse MNA scaling
     dune exec bench/main.exe -- micro     -- bechamel micro-benchmarks
     dune exec bench/main.exe -- kernels [--smoke] -- kernel perf trajectory
                                            (writes BENCH_kernels.json)
     dune exec bench/main.exe -- engine [--smoke]  -- batch vs incremental
                                            Algorithm 2 (BENCH_engine.json)
     dune exec bench/main.exe -- serve [--smoke]   -- compiled pole-residue
                                            vs per-point LU (BENCH_serve.json)
     dune exec bench/main.exe -- supervisor [--smoke] -- socket transport
                                            throughput at 1/2/4 workers and
                                            overload shed rate
                                            (BENCH_supervisor.json)
     dune exec bench/main.exe -- session [--smoke] -- adaptive vs uniform
                                            frequency selection on the PDN
                                            workload (BENCH_session.json)
     dune exec bench/main.exe -- sparse [--smoke] -- assemble / factor /
                                            Krylov-reduce a ~100k-node
                                            plane grid (BENCH_sparse.json)
     dune exec bench/main.exe -- router [--smoke] -- sharded routing tier:
                                            req/s at 1/2/4 replicas (cache
                                            affinity), coalescing hit rate,
                                            binary vs JSON frame bytes
                                            (BENCH_router.json) *)

let commands =
  [ ("fig1", Fig1.run);
    ("fig2", Fig2.run);
    ("table1", Table1.run);
    ("minsample", Minsample.run);
    ("ablation", Ablation.run);
    ("scale", Scale.run);
    ("micro", Micro.run);
    ("kernels", Kernels.run ?smoke:None);
    ("engine", Engine_bench.run ?smoke:None);
    ("serve", Serve_bench.run ?smoke:None);
    ("supervisor", Supervisor_bench.run ?smoke:None);
    ("session", Session_bench.run ?smoke:None);
    ("sparse", Sparse_bench.run ?smoke:None);
    ("router", Router_bench.run ?smoke:None) ]

let run_all () =
  List.iter (fun (_, f) -> f ()) commands

let () =
  match Array.to_list Sys.argv with
  | _ :: "kernels" :: rest ->
    (* --smoke runs tiny sizes and validates the emitted JSON *)
    Kernels.run ~smoke:(List.mem "--smoke" rest) ()
  | _ :: "engine" :: rest ->
    Engine_bench.run ~smoke:(List.mem "--smoke" rest) ()
  | _ :: "serve" :: rest ->
    Serve_bench.run ~smoke:(List.mem "--smoke" rest) ()
  | _ :: "supervisor" :: rest ->
    Supervisor_bench.run ~smoke:(List.mem "--smoke" rest) ()
  | _ :: "session" :: rest ->
    Session_bench.run ~smoke:(List.mem "--smoke" rest) ()
  | _ :: "sparse" :: rest ->
    Sparse_bench.run ~smoke:(List.mem "--smoke" rest) ()
  | _ :: "router" :: rest ->
    Router_bench.run ~smoke:(List.mem "--smoke" rest) ()
  | [ _ ] | [ _; "all" ] -> run_all ()
  | [ _; cmd ] ->
    (match List.assoc_opt cmd commands with
     | Some f -> f ()
     | None ->
       Printf.eprintf "unknown experiment %S; available: all %s\n" cmd
         (String.concat " " (List.map fst commands));
       exit 1)
  | _ ->
    Printf.eprintf "usage: main.exe [all|%s]\n"
      (String.concat "|" (List.map fst commands));
    exit 1
