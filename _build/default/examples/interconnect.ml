(* Example-1 scenario: modeling a massive-port package model from very
   few samples.

   An order-150, 30-port system is sampled at just 8 frequencies — far
   too few for vector-format interpolation (which sees one direction per
   sample) but comfortably above MFTI's minimal sampling bound
   (150+30)/30 = 6.  We fit both and print the side-by-side accuracy,
   reproducing the situation of the paper's Figures 1-2 (the bench
   harness prints the full curves; this example is the narrative
   version).

   Run with: dune exec examples/interconnect.exe *)

open Linalg
open Statespace
open Mfti

let () =
  let sys = Random_sys.example1 () in
  Printf.printf "package model: order %d, %d ports\n" (Descriptor.order sys)
    (Descriptor.inputs sys);
  let samples = Sampling.sample_system sys (Sampling.logspace 10. 1e5 8) in
  Printf.printf "sampling: 8 matrices across 10 Hz - 100 kHz\n\n";

  Printf.printf "fitting MFTI (every entry of every sample used)...\n%!";
  let mfti = Algorithm1.fit samples in
  Printf.printf "  -> order %d\n%!" mfti.Algorithm1.rank;

  Printf.printf "fitting VFTI (one direction per sample)...\n%!";
  let vfti = Vfti.fit samples in
  Printf.printf "  -> order %d\n\n%!" vfti.Algorithm1.rank;

  let validation = Sampling.sample_system sys (Sampling.logspace 20. 0.8e5 25) in
  Printf.printf "%s\n" (Metrics.report ~name:"MFTI" mfti.Algorithm1.model validation);
  Printf.printf "%s\n\n" (Metrics.report ~name:"VFTI" vfti.Algorithm1.model validation);

  (* a few spot values of the port 1 -> 1 response, like Fig. 2 *)
  Printf.printf "|H11| spot checks:\n";
  Printf.printf "%12s %14s %14s %14s\n" "freq (Hz)" "original" "MFTI" "VFTI";
  List.iter
    (fun f ->
      let mag s = Cx.abs (Cmat.get (Descriptor.eval_freq s f) 0 0) in
      Printf.printf "%12.3e %14.6e %14.6e %14.6e\n" f (mag sys)
        (mag mfti.Algorithm1.model) (mag vfti.Algorithm1.model))
    [ 30.; 300.; 3e3; 3e4 ];
  Printf.printf
    "\nMFTI tracks the original; VFTI cannot, since 8 vector samples span\n\
     rank 8 while the system needs order %d + rank(D) %d = 180.\n"
    150 30
