(* Quickstart: macromodel an RLC interconnect from frequency samples.

   1. build a 10-section RLC transmission-line model (the "device under
      test" standing in for an EM solver or a VNA measurement);
   2. sample its scattering matrix at a handful of frequencies;
   3. recover a state-space macromodel with MFTI (paper Algorithm 1);
   4. check the model against frequencies that were never sampled.

   Run with: dune exec examples/quickstart.exe *)

open Statespace
open Mfti

let () =
  (* 1. the device: a lossy RLC ladder, 2 ports, order 20 *)
  let line = Rf.Ladder.default_spec in
  let dut = Rf.Ladder.scattering_model line ~z0:50. in
  Printf.printf "device under test: %d states, %d ports\n"
    (Descriptor.order dut) (Descriptor.inputs dut);

  (* 2. sample S(f) at 22 log-spaced frequencies *)
  let freqs = Sampling.logspace 1e6 2e10 22 in
  let samples = Sampling.sample_system dut freqs in
  Printf.printf "sampled %d scattering matrices from %.0e to %.0e Hz\n"
    (Array.length samples) freqs.(0) freqs.(Array.length freqs - 1);

  (* 3. fit: matrix-format tangential interpolation *)
  let result = Algorithm1.fit samples in
  Printf.printf "MFTI recovered a model of order %d\n" result.Algorithm1.rank;

  (* 4. validate off the sampling grid *)
  let validation = Sampling.sample_system dut (Sampling.logspace 3e6 1e10 31) in
  Printf.printf "%s\n" (Metrics.report ~name:"MFTI" result.Algorithm1.model validation);
  Printf.printf "model is %s and %s\n"
    (if Descriptor.is_real result.Algorithm1.model then "real" else "complex")
    (if Poles.is_stable result.Algorithm1.model then "stable" else "UNSTABLE");

  (* bonus: how few samples would have sufficed?  Theorem 3.5 counts all
     states; modes resonating outside the sampled band are weakly
     observable, so real devices want a small margin on top. *)
  let k_min =
    Svd_reduce.minimal_samples ~order:(Descriptor.order dut)
      ~rank_d:2 ~inputs:2 ~outputs:2
  in
  Printf.printf "theorem 3.5 bound: %d samples; sweeping around it:\n" k_min;
  List.iter
    (fun k ->
      let r2 = Algorithm1.fit (Sampling.sample_system dut (Sampling.logspace 1e6 2e10 k)) in
      Printf.printf "  %s\n"
        (Metrics.report ~name:(Printf.sprintf "MFTI, %2d samples" k)
           r2.Algorithm1.model validation))
    [ k_min - 4; k_min; k_min + 4 ]
