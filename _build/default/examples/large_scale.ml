(* Large-scale macromodeling: a 20x20-grid PDN (~1200 MNA states).

   At this size dense per-frequency solves are already painful — the
   sparse Gilbert-Peierls path samples the board in a fraction of a
   second per point.  MFTI then compresses the sampled band behaviour
   into a compact state-space macromodel: the underlying circuit has
   ~1200 states, but its responses over the band of interest need far
   fewer, and the Loewner singular values reveal exactly how many.

   Run with: dune exec examples/large_scale.exe *)

open Statespace
open Mfti

let () =
  let spec =
    { Rf.Pdn.default_spec with nx = 20; ny = 20; ports = 8; decaps = 10;
      seed = 20 }
  in
  let circuit = Rf.Pdn.build spec in
  Printf.printf "PDN: %d MNA states, %d ports\n" (Rf.Mna.num_states circuit)
    (Rf.Mna.num_ports circuit);

  (* sample through the sparse solver *)
  let k = 120 in
  let freqs = Sampling.logspace 1e6 2e9 k in
  let samples, t_sample =
    (fun f -> let t0 = Sys.time () in let r = f () in (r, Sys.time () -. t0))
      (fun () -> Rf.Pdn.scattering_sparse spec ~z0:50. freqs)
  in
  Printf.printf "sampled %d points in %.2f s (%.1f ms/point, sparse LU)\n" k
    t_sample (1000. *. t_sample /. float_of_int k);

  (* fit a band-limited macromodel *)
  let options =
    { Algorithm1.default_options with weight = Tangential.Uniform 6 }
  in
  let fit, t_fit =
    (fun f -> let t0 = Sys.time () in let r = f () in (r, Sys.time () -. t0))
      (fun () -> Algorithm1.fit ~options samples)
  in
  Printf.printf "MFTI fit in %.2f s: macromodel order %d (circuit had %d)\n"
    t_fit fit.Algorithm1.rank (Rf.Mna.num_states circuit);

  (* validate against fresh sparse samples off the fitting grid *)
  let vfreqs = Sampling.logspace 1.5e6 1.8e9 31 in
  let validation = Rf.Pdn.scattering_sparse spec ~z0:50. vfreqs in
  Printf.printf "%s\n"
    (Metrics.report ~name:"macromodel" fit.Algorithm1.model validation);
  Printf.printf
    "\nthe macromodel is ~%dx smaller than the netlist and reproduces the\n\
     whole band to %.2g%% RMS relative error\n"
    (Rf.Mna.num_states circuit / Stdlib.max fit.Algorithm1.rank 1)
    (100. *. Metrics.err fit.Algorithm1.model validation)
