examples/quickstart.ml: Algorithm1 Array Descriptor List Metrics Mfti Poles Printf Rf Sampling Statespace Svd_reduce
