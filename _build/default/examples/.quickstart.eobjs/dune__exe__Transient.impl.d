examples/transient.ml: Algorithm1 Array Cmat Cx Descriptor Linalg List Mfti Printf Rf Sampling Statespace Stdlib Timedomain
