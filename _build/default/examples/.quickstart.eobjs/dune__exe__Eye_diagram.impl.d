examples/eye_diagram.ml: Algorithm1 Array Cmat Cx Float Linalg List Metrics Mfti Printf Rf Sampling Statespace Stdlib String Timedomain
