examples/pdn_modeling.ml: Algorithm1 Algorithm2 Array Descriptor Float Metrics Mfti Printf Rf Sampling Statespace Svd_reduce Tangential Vfti
