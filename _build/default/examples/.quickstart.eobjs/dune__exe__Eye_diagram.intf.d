examples/eye_diagram.mli:
