examples/large_scale.ml: Algorithm1 Metrics Mfti Printf Rf Sampling Statespace Stdlib Sys Tangential
