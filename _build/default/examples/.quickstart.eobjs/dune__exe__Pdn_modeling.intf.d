examples/pdn_modeling.mli:
