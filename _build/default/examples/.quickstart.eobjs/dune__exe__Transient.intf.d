examples/transient.mli:
