examples/crosstalk.mli:
