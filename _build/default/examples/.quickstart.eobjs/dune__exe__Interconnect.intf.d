examples/interconnect.mli:
