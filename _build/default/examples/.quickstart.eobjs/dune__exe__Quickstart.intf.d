examples/quickstart.mli:
