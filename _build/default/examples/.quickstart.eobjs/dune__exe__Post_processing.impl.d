examples/post_processing.ml: Algorithm1 Array Descriptor Linalg List Metrics Mfti Printf Reduction Rf Sampling Stabilize Statespace Stdlib Svd_reduce Tangential
