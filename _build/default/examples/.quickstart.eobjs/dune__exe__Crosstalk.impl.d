examples/crosstalk.ml: Algorithm1 Cmat Cx Descriptor Linalg List Metrics Mfti Printf Rf Sampling Statespace Stdlib Timedomain
