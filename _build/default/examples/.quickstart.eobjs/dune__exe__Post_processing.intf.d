examples/post_processing.mli:
