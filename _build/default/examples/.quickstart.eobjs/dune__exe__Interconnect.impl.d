examples/interconnect.ml: Algorithm1 Cmat Cx Descriptor Linalg List Metrics Mfti Printf Random_sys Sampling Statespace Vfti
