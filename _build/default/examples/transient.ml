(* Reusing a fitted macromodel in the time domain.

   Macromodels exist to be dropped into circuit simulation.  This example
   fits an MFTI model to a sampled interconnect, then runs a trapezoidal
   transient analysis of both the original netlist model and the
   macromodel under the same step stimulus, and reports how closely the
   waveforms agree.

   Run with: dune exec examples/transient.exe *)

open Linalg
open Statespace
open Mfti

let () =
  (* the device: a terminated RLC line *)
  let spec = { Rf.Ladder.default_spec with sections = 8 } in
  let dut = Rf.Ladder.scattering_model spec ~z0:50. in

  (* frequency-domain fit *)
  let samples = Sampling.sample_system dut (Sampling.logspace 1e6 3e10 20) in
  let fit = Algorithm1.fit samples in
  Printf.printf "fitted macromodel: order %d (original %d)\n"
    fit.Algorithm1.rank (Descriptor.order dut);

  (* transient: step on port 1, watch the transmitted wave at port 2 *)
  let dt = 2e-12 and steps = 2000 in
  let run sys = Timedomain.step_response sys ~port:0 ~dt ~steps in
  let original = run dut in
  let model = run fit.Algorithm1.model in

  let worst = ref 0. in
  let at k r = (Cmat.get r.Timedomain.outputs 1 k).Cx.re in
  for k = 0 to steps do
    worst := Stdlib.max !worst (abs_float (at k original -. at k model))
  done;
  Printf.printf "step response: worst |y_model - y_original| = %.3e over %g ns\n"
    !worst (float_of_int steps *. dt *. 1e9);

  Printf.printf "\n%8s %12s %12s\n" "t (ps)" "original" "macromodel";
  List.iter
    (fun k ->
      Printf.printf "%8.0f %12.6f %12.6f\n"
        (original.Timedomain.times.(k) *. 1e12) (at k original) (at k model))
    [ 0; 50; 100; 200; 400; 800; 1600; 2000 ];

  if !worst < 1e-3 then
    Printf.printf "\nmacromodel is transient-accurate: safe to hand to a simulator\n"
  else
    Printf.printf "\nWARNING: transient mismatch above 1e-3\n"
