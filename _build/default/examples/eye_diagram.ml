(* Eye-diagram analysis of an interconnect macromodel.

   Drive a fitted channel model with a PRBS stream and fold the received
   waveform modulo the bit period: the vertical opening between the
   worst "1" and the worst "0" at each sampling phase is the classic
   signal-integrity "eye".  Everything runs through the macromodel,
   which is the point — the designer never re-simulates the netlist.

   Run with: dune exec examples/eye_diagram.exe *)

open Linalg
open Statespace
open Mfti

let () =
  (* the channel: a lossy line, fit from frequency samples *)
  let spec =
    { Rf.Ladder.default_spec with sections = 12; series_r = 1.2;
      termination = 50. }
  in
  let dut = Rf.Ladder.scattering_model spec ~z0:50. in
  let samples = Sampling.sample_system dut (Sampling.logspace 1e6 4e10 26) in
  let fit = Algorithm1.fit samples in
  let channel = fit.Algorithm1.model in
  Printf.printf "channel macromodel: order %d, ERR %.1e\n" fit.Algorithm1.rank
    (Metrics.err channel samples);

  let dt = 10e-12 in

  (* measure the propagation delay from the step response: time for the
     far end to reach half its settled value *)
  let step = Timedomain.step_response channel ~port:0 ~dt ~steps:800 in
  let settled = (Cmat.get step.Timedomain.outputs 1 800).Cx.re in
  let delay = ref 0. in
  (try
     for k = 0 to 800 do
       if (Cmat.get step.Timedomain.outputs 1 k).Cx.re >= settled /. 2. then begin
         delay := step.Timedomain.times.(k);
         raise Exit
       end
     done
   with Exit -> ());
  Printf.printf "measured channel delay: %.0f ps; settled level %.3f V\n"
    (!delay *. 1e12) settled;

  let eye_at bit_period =
    let rise = 60e-12 in
    let bits = 400 in
    let per_bit = int_of_float (bit_period /. dt) in
    let steps = bits * per_bit in
    let wave = Timedomain.Waveform.prbs ~seed:7 ~bit_period ~rise () in
    let input = Timedomain.Waveform.on_port ~ports:2 ~port:0 wave in
    let r =
      Timedomain.simulate ~method_:Timedomain.Bdf2 channel ~input ~dt ~steps
    in
    (* classify each received sample by the bit that was on the wire one
       channel delay earlier, sampled mid-bit *)
    let hi = Array.make per_bit infinity and lo = Array.make per_bit neg_infinity in
    let settle = 20 * per_bit in
    for k = settle to steps do
      let t = r.Timedomain.times.(k) in
      let sent = wave (t -. !delay) in
      (* skip samples launched during an edge *)
      let launch = t -. !delay in
      let frac = launch -. (Float.floor (launch /. bit_period) *. bit_period) in
      if frac > rise then begin
        let phase = k mod per_bit in
        let y = (Cmat.get r.Timedomain.outputs 1 k).Cx.re in
        if sent > 0.5 then hi.(phase) <- Stdlib.min hi.(phase) y
        else lo.(phase) <- Stdlib.max lo.(phase) y
      end
    done;
    let best = ref neg_infinity in
    for p = 0 to per_bit - 1 do
      if Float.is_finite hi.(p) && Float.is_finite lo.(p) then
        best := Stdlib.max !best (hi.(p) -. lo.(p))
    done;
    (* no clean bit ever launched (period under the rise time), or the
       worst-1 dips below the worst-0: the eye is closed *)
    if Float.is_finite !best then Stdlib.max 0. (!best /. settled) else 0.
  in

  Printf.printf "\n%12s %14s\n" "bit period" "eye height";
  List.iter
    (fun bp ->
      let eye = eye_at bp in
      let bar =
        if eye > 0. then String.make (int_of_float (30. *. eye)) '#' else ""
      in
      Printf.printf "%9.0f ps %13.1f%% %s\n" (bp *. 1e12) (100. *. eye) bar)
    [ 1600e-12; 400e-12; 100e-12; 50e-12 ];
  Printf.printf
    "\nthe eye collapses as the bit period approaches the channel delay\n\
     and rise time — all computed from the order-%d macromodel\n"
    fit.Algorithm1.rank
