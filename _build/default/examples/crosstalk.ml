(* Crosstalk analysis with a fitted macromodel.

   Three coupled interconnect lines: drive the middle line (aggressor)
   and watch the noise induced on a neighbour (victim).  We fit an MFTI
   macromodel from sampled S-parameters, verify it reproduces the
   frequency-domain crosstalk, then launch a fast pulse through the
   macromodel and measure the far-end victim noise in the time domain —
   the workflow the paper's introduction motivates.

   Run with: dune exec examples/crosstalk.exe *)

open Linalg
open Statespace
open Mfti

let () =
  let spec = Rf.Coupled_lines.default_spec in
  let dut = Rf.Coupled_lines.scattering_model spec ~z0:50. in
  Printf.printf "3 coupled lines: %d states, %d ports\n" (Descriptor.order dut)
    (Descriptor.inputs dut);

  (* fit from samples *)
  let samples = Sampling.sample_system dut (Sampling.logspace 1e7 4e10 30) in
  let fit = Algorithm1.fit samples in
  let model = fit.Algorithm1.model in
  Printf.printf "macromodel: order %d, validation %s\n\n" fit.Algorithm1.rank
    (Metrics.report ~name:"MFTI"
       model
       (Sampling.sample_system dut (Sampling.logspace 2e7 3e10 25)));

  (* frequency-domain crosstalk: aggressor = middle line (1) *)
  let aggressor = Rf.Coupled_lines.near_port spec ~line:1 in
  let victim_near = Rf.Coupled_lines.near_port spec ~line:0 in
  let victim_far = Rf.Coupled_lines.far_port spec ~line:0 in
  Printf.printf "crosstalk (dB) at spot frequencies:\n";
  Printf.printf "%12s %12s %12s %12s %12s\n" "freq (Hz)" "NEXT(dut)"
    "NEXT(model)" "FEXT(dut)" "FEXT(model)";
  List.iter
    (fun f ->
      let db s i j =
        20. *. log10 (Cx.abs (Cmat.get (Descriptor.eval_freq s f) i j))
      in
      Printf.printf "%12.2e %12.2f %12.2f %12.2f %12.2f\n" f
        (db dut victim_near aggressor) (db model victim_near aggressor)
        (db dut victim_far aggressor) (db model victim_far aggressor))
    [ 1e8; 1e9; 5e9; 2e10 ];

  (* time-domain: 100 ps rise pulse on the aggressor, victim far end *)
  let dt = 2e-12 and steps = 1500 in
  let wave =
    Timedomain.Waveform.pulse ~t0:20e-12 ~rise:100e-12 ~width:1e-9 ()
  in
  let input =
    Timedomain.Waveform.on_port ~ports:(Descriptor.inputs model)
      ~port:aggressor wave
  in
  let run sys = Timedomain.simulate ~method_:Timedomain.Bdf2 sys ~input ~dt ~steps in
  let r_dut = run dut and r_model = run model in
  let peak r port =
    let worst = ref 0. in
    for k = 0 to steps do
      worst :=
        Stdlib.max !worst (abs_float (Cmat.get r.Timedomain.outputs port k).Cx.re)
    done;
    !worst
  in
  Printf.printf "\npulse test (100 ps rise):\n";
  Printf.printf "  far-end victim noise peak: dut %.4f V, macromodel %.4f V\n"
    (peak r_dut victim_far) (peak r_model victim_far);
  let worst_diff = ref 0. in
  for k = 0 to steps do
    let a = (Cmat.get r_dut.Timedomain.outputs victim_far k).Cx.re in
    let b = (Cmat.get r_model.Timedomain.outputs victim_far k).Cx.re in
    worst_diff := Stdlib.max !worst_diff (abs_float (a -. b))
  done;
  Printf.printf "  worst waveform deviation:  %.2e V\n" !worst_diff;
  if !worst_diff < 1e-3 then
    Printf.printf "  macromodel reproduces the crosstalk transient\n"
