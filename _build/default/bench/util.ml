(* Shared helpers for the experiment harness. *)

let time_it f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

let heading title =
  Printf.printf "\n=== %s ===\n%!" title

let subheading title =
  Printf.printf "\n--- %s ---\n%!" title

(* Print one series as "index value" lines, for gnuplot-style reuse. *)
let print_series ~name values =
  Printf.printf "# series: %s (%d points)\n" name (Array.length values);
  Array.iteri (fun i v -> Printf.printf "%d %.6e\n" (i + 1) v) values

(* Print aligned rows. *)
let print_table ~header rows =
  let widths =
    Array.mapi
      (fun i h ->
        List.fold_left (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      (Array.of_list header)
  in
  let print_row cells =
    List.iteri
      (fun i c -> Printf.printf "%-*s  " widths.(i) c)
      cells;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter print_row rows;
  Printf.printf "%!"

let fmt_sci x = Printf.sprintf "%.2e" x
let fmt_time t = Printf.sprintf "%.3f" t
