(* Paper Table 1: interpolation of noisy data from a 14-port power
   distribution network.

   The paper uses measured INC-board data [10] (proprietary); we use the
   synthetic PDN of Rf.Pdn (see DESIGN.md) plus 1% multiplicative
   measurement noise.  Test 1 = 100 uniformly spaced samples; Test 2 =
   100 samples concentrated in the high-frequency band (ill-conditioned).

   Compared algorithms, as in the paper: vector fitting with 10
   iterations at n = 140 and n = 280; VFTI; MFTI-1 with two weightings;
   recursive MFTI-2.  Reported: reduced order, CPU time, relative error
   ERR against the (noisy) data — plus ERR against the noise-free truth,
   which the paper could not know but we can. *)

open Statespace
open Mfti

let z0 = 50.
let noise_level = 0.001 (* -60 dB measurement noise (VNA-grade) *)
let f_lo = 1e6
let f_hi = 3e9

(* no sharp singular-value drop under noise: keep everything above a
   fraction of the noise floor (paper: "use the singular values to
   determine the regular part") *)
let noisy_rank = Mfti.Svd_reduce.Tol 3e-3
(* hand-calibrated against the noise floor, exactly as the paper sets its
   threshold "manually to trade off between speed and accuracy"; the
   bench/main.exe ablation includes the tolerance sweep behind this *)

type row = {
  label : string;
  order : int;
  seconds : float;
  err_data : float;
  err_truth : float;
}

let row_of label order seconds err_data err_truth =
  { label; order; seconds; err_data; err_truth }

(* ERR of a generic evaluator against samples *)
let err_of eval samples =
  let errs =
    Array.map
      (fun smp ->
        let h = eval smp.Sampling.freq in
        let denom = Linalg.Svd.norm2 smp.Sampling.s in
        let num = Linalg.Svd.norm2 (Linalg.Cmat.sub h smp.Sampling.s) in
        if denom = 0. then num else num /. denom)
      samples
  in
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. errs)
  /. sqrt (float_of_int (Array.length errs))

let vf_row ~n ~noisy ~clean =
  let options = { Vfit.Vf.default_options with n_poles = n; iterations = 10 } in
  let (model, _), dt = Util.time_it (fun () -> Vfit.Vf.fit ~options noisy) in
  row_of
    (Printf.sprintf "VF (10 iter), n=%d" n)
    (Vfit.Vf.order model) dt
    (err_of (Vfit.Vf.eval_freq model) noisy)
    (err_of (Vfit.Vf.eval_freq model) clean)

let model_row label fit ~noisy ~clean =
  let (model, rank), dt = Util.time_it fit in
  row_of label rank dt
    (err_of (Descriptor.eval_freq model) noisy)
    (err_of (Descriptor.eval_freq model) clean)

let mfti1_row ~label ~weight ~noisy ~clean =
  model_row label
    (fun () ->
      let options =
        { Algorithm1.default_options with weight; rank_rule = noisy_rank }
      in
      let r = Algorithm1.fit ~options noisy in
      (r.Algorithm1.model, r.Algorithm1.rank))
    ~noisy ~clean

let vfti_row ~noisy ~clean =
  model_row "VFTI"
    (fun () ->
      let options = { Vfti.default_options with rank_rule = noisy_rank } in
      let r = Vfti.fit ~options noisy in
      (r.Algorithm1.model, r.Algorithm1.rank))
    ~noisy ~clean

let mfti2_row ~noisy ~clean =
  model_row "MFTI-2 (recursive)"
    (fun () ->
      let options =
        { Algorithm2.default_options with
          weight = Tangential.Uniform 2;
          batch = 10;
          threshold = 10. *. noise_level;
          rank_rule = noisy_rank }
      in
      let r = Algorithm2.fit ~options noisy in
      (r.Algorithm2.model, r.Algorithm2.rank))
    ~noisy ~clean

let run_test ~name ~freqs ~truth =
  Util.subheading name;
  let clean = Sampling.sample_system truth freqs in
  let noisy = Rf.Noise.add_relative ~seed:77 ~level:noise_level clean in
  let rows =
    [ vf_row ~n:140 ~noisy ~clean;
      vf_row ~n:280 ~noisy ~clean;
      vfti_row ~noisy ~clean;
      mfti1_row ~label:"MFTI-1, t=2 (weight 1)" ~weight:(Tangential.Uniform 2)
        ~noisy ~clean;
      mfti1_row ~label:"MFTI-1, t=3 (weight 2)" ~weight:(Tangential.Uniform 3)
        ~noisy ~clean;
      (* beyond the paper's table: wider blocks keep averaging the noise *)
      mfti1_row ~label:"MFTI-1, t=6 (extra)" ~weight:(Tangential.Uniform 6)
        ~noisy ~clean;
      mfti2_row ~noisy ~clean ]
  in
  Util.print_table
    ~header:[ "algorithm"; "reduced order"; "time(s)"; "ERR vs data"; "ERR vs truth" ]
    (List.map
       (fun r ->
         [ r.label; string_of_int r.order; Util.fmt_time r.seconds;
           Util.fmt_sci r.err_data; Util.fmt_sci r.err_truth ])
       rows);
  rows

let run () =
  Util.heading "Table 1: interpolation of noisy 14-port PDN data";
  let truth = Rf.Pdn.scattering_model Rf.Pdn.example2_spec ~z0 in
  Printf.printf
    "workload: synthetic 14-port PDN (order %d), 100 samples, %.0f dB noise\n%!"
    (Descriptor.order truth)
    (-20. *. log10 noise_level);
  let test1 =
    run_test ~name:"Test 1 (uniform sampling)"
      ~freqs:(Sampling.linspace f_lo f_hi 100) ~truth
  in
  let test2 =
    run_test ~name:"Test 2 (samples concentrated in the high band)"
      ~freqs:
        (Sampling.clustered ~lo:f_lo ~hi:f_hi ~split:(f_hi /. 10.)
           ~fraction:0.85 100)
      ~truth
  in
  Util.subheading "shape checks (paper's qualitative claims)";
  let find rows prefix =
    List.find (fun r -> String.length r.label >= String.length prefix
                        && String.sub r.label 0 (String.length prefix) = prefix) rows
  in
  let claim name ok = Printf.printf "  [%s] %s\n" (if ok then "ok" else "MISS") name in
  List.iter
    (fun (tag, rows) ->
      Printf.printf "%s:\n" tag;
      (* n=280 skips its degenerate pole iteration, so n=140 is the
         meaningful VF timing *)
      let vf = find rows "VF (10 iter), n=140" in
      let vfti = find rows "VFTI" in
      let m2 = find rows "MFTI-1, t=2" in
      let m3 = find rows "MFTI-1, t=3" in
      let mr = find rows "MFTI-2" in
      claim "MFTI-1 (t=2) more accurate than VFTI" (m2.err_data < vfti.err_data);
      claim "accuracy improves with t" (m3.err_data <= m2.err_data);
      claim "MFTI-2 more accurate than VFTI" (mr.err_data < vfti.err_data);
      claim "MFTI-1 faster than VF" (m3.seconds < vf.seconds);
      claim "VFTI fastest" (vfti.seconds <= m2.seconds))
    [ ("Test 1", test1); ("Test 2", test2) ];
  Printf.printf "%!"
