bench/table1.ml: Algorithm1 Algorithm2 Array Descriptor Linalg List Mfti Printf Rf Sampling Statespace String Tangential Util Vfit Vfti
