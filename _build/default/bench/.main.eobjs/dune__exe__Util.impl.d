bench/util.ml: Array List Printf Stdlib String Sys
