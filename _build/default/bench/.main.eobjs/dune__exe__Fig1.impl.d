bench/fig1.ml: Array Descriptor Linalg Loewner Mfti Plot Printf Random_sys Sampling Statespace Svd_reduce Sys Tangential Util
