bench/scale.ml: Array Linalg List Printf Rf Sampling Statespace Stdlib Util
