bench/ablation.ml: Algorithm1 Algorithm2 Array Direction Linalg List Loewner Metrics Mfti Printf Random_sys Realify Rf Sampling Statespace Stdlib Svd_reduce Tangential Util
