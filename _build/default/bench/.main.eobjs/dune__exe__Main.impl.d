bench/main.ml: Ablation Array Fig1 Fig2 List Micro Minsample Printf Scale String Sys Table1
