bench/fig2.ml: Algorithm1 Array Cmat Cx Descriptor Linalg Metrics Mfti Plot Printf Random_sys Sampling Statespace Sys Util Vfti
