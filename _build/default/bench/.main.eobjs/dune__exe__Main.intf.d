bench/main.mli:
