bench/minsample.ml: Algorithm1 List Metrics Mfti Printf Random_sys Sampling Statespace Stdlib Svd_reduce Util Vfti
