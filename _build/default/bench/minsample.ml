(* Example 1's sampling claim and Theorem 3.5.

   Paper: MFTI recovers the order-150 / 30-port / rank-30-D system from
   6 matrix samples ((150+30)/30), while VFTI needs about 180 — a factor
   of 30 (the port count). *)

open Statespace
open Mfti

let validation sys = Sampling.sample_system sys (Sampling.logspace 15. 0.9e5 25)

let run () =
  Util.heading "Minimal sampling (Theorem 3.5 / Example 1 claim)";
  let sys = Random_sys.example1 () in
  let vgrid = validation sys in
  Printf.printf "theorem 3.5 estimate: k_min = %d matrix samples for MFTI\n%!"
    (Svd_reduce.minimal_samples ~order:150 ~rank_d:30 ~inputs:30 ~outputs:30);

  Util.subheading "MFTI: validation ERR vs number of matrix samples";
  let rows =
    List.map
      (fun k ->
        let samples = Sampling.sample_system sys (Sampling.logspace 10. 1e5 k) in
        let (result, dt) = Util.time_it (fun () -> Algorithm1.fit samples) in
        let e = Metrics.err result.Algorithm1.model vgrid in
        [ string_of_int k; string_of_int result.Algorithm1.rank;
          Util.fmt_sci e; Util.fmt_time dt ])
      [ 2; 4; 6; 8 ]
  in
  Util.print_table ~header:[ "samples"; "model order"; "validation ERR"; "time(s)" ] rows;
  Printf.printf "(expect failure below 6 samples, recovery at 6+)\n";

  Util.subheading "VFTI: validation ERR vs number of matrix samples";
  let rows =
    List.map
      (fun k ->
        let samples = Sampling.sample_system sys (Sampling.logspace 10. 1e5 k) in
        let (result, dt) = Util.time_it (fun () -> Vfti.fit samples) in
        let e = Metrics.err result.Algorithm1.model vgrid in
        [ string_of_int k; string_of_int result.Algorithm1.rank;
          Util.fmt_sci e; Util.fmt_time dt ])
      [ 60; 120; 170; 180; 200 ]
  in
  Util.print_table ~header:[ "samples"; "model order"; "validation ERR"; "time(s)" ] rows;
  Printf.printf "(expect recovery only near 180 samples: ~30x the MFTI count)\n%!";

  Util.subheading "Theorem 3.5 scan over smaller systems";
  let scan order ports rank_d =
    let spec =
      { Random_sys.order; ports; rank_d; freq_lo = 100.; freq_hi = 1e5;
        damping = 0.08; seed = 5 }
    in
    let sys = Random_sys.generate spec in
    let vgrid = Sampling.sample_system sys (Sampling.logspace 150. 0.9e5 21) in
    let kmin =
      Svd_reduce.minimal_samples ~order ~rank_d ~inputs:ports ~outputs:ports
    in
    let err_at k =
      let samples = Sampling.sample_system sys (Sampling.logspace 100. 1e5 k) in
      let result = Algorithm1.fit samples in
      Metrics.err result.Algorithm1.model vgrid
    in
    let before = err_at (Stdlib.max 2 (kmin - 2)) in
    let at = err_at kmin in
    [ Printf.sprintf "order %d, %d ports, rank D %d" order ports rank_d;
      string_of_int kmin; Util.fmt_sci before; Util.fmt_sci at ]
  in
  Util.print_table
    ~header:[ "system"; "k_min (thm)"; "ERR at k_min - 2"; "ERR at k_min" ]
    [ scan 12 3 3; scan 20 4 0; scan 30 5 5; scan 24 6 2 ];
  Printf.printf "(expect ERR to collapse to ~1e-10 exactly at k_min)\n%!"
