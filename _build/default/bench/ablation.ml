(* Ablations over the design choices DESIGN.md calls out:
   - direction generator (orthonormal / identity-cycling / random unit)
   - SVD projection flavour (stacked vs pencil)
   - block width t on a noisy fit (speed/accuracy trade-off)
   - Algorithm 2 batch size (selection granularity)

   Run on a mid-size system so each cell takes milliseconds. *)

open Statespace
open Mfti

let spec =
  { Random_sys.order = 40; ports = 5; rank_d = 5; freq_lo = 100.;
    freq_hi = 1e6; damping = 0.06; seed = 11 }

let sys = Random_sys.generate spec

let validation = Sampling.sample_system sys (Sampling.logspace 150. 0.9e6 31)

let samples k = Sampling.sample_system sys (Sampling.logspace 100. 1e6 k)

let noisy k = Rf.Noise.add_relative ~seed:3 ~level:0.01 (samples k)

let fit_err options smps =
  let (r, dt) = Util.time_it (fun () -> Algorithm1.fit ~options smps) in
  (Metrics.err r.Algorithm1.model validation, r.Algorithm1.rank, dt)

let run () =
  Util.heading "Ablations";

  Util.subheading "direction generator (10 samples, noise-free)";
  let rows =
    List.map
      (fun (name, directions) ->
        let e, rank, dt =
          fit_err { Algorithm1.default_options with directions } (samples 10)
        in
        [ name; string_of_int rank; Util.fmt_sci e; Util.fmt_time dt ])
      [ ("orthonormal (default)", Direction.Orthonormal 0);
        ("identity cycling", Direction.Identity_cycle);
        ("random unit columns", Direction.Random_unit 0) ]
  in
  Util.print_table ~header:[ "directions"; "order"; "validation ERR"; "time(s)" ] rows;

  Util.subheading "SVD projection flavour (10 samples, noise-free)";
  let rows =
    List.map
      (fun (name, mode, real_model) ->
        let e, rank, dt =
          fit_err { Algorithm1.default_options with mode; real_model } (samples 10)
        in
        [ name; string_of_int rank; Util.fmt_sci e; Util.fmt_time dt ])
      [ ("stacked [LL sLL] (default)", Svd_reduce.Stacked, true);
        ("pencil x0*LL - sLL (lemma 3.4)", Svd_reduce.Pencil None, false);
        ("stacked, complex pipeline", Svd_reduce.Stacked, false) ]
  in
  Util.print_table ~header:[ "projection"; "order"; "validation ERR"; "time(s)" ] rows;

  Util.subheading "block width t on noisy data (40 samples, 1% noise)";
  (* With noise there is no sharp singular-value drop; the rank decision
     keeps everything above (a fraction of) the noise floor. *)
  let noisy_rank = Svd_reduce.Tol 1e-3 in
  let noisy40 = noisy 40 in
  let rows =
    List.map
      (fun t ->
        let e, rank, dt =
          fit_err
            { Algorithm1.default_options with
              weight = Tangential.Uniform t;
              rank_rule = noisy_rank }
            noisy40
        in
        [ string_of_int t; string_of_int rank; Util.fmt_sci e; Util.fmt_time dt ])
      [ 1; 2; 3; 4; 5 ]
  in
  Util.print_table ~header:[ "t"; "order"; "validation ERR"; "time(s)" ] rows;
  Printf.printf "(expect accuracy to improve and cost to grow with t)\n";

  Util.subheading "SVD backend on a Loewner pencil (Jacobi vs Golub-Kahan)";
  let pencil =
    Realify.apply (Loewner.build (Tangential.build (samples 12)))
  in
  let stacked = Linalg.Cmat.hcat pencil.Loewner.ll pencil.Loewner.sll in
  let dj, tj =
    Util.time_it (fun () ->
        Linalg.Svd.decompose ~algorithm:Linalg.Svd.Jacobi stacked)
  in
  let dg, tg =
    Util.time_it (fun () ->
        Linalg.Svd.decompose ~algorithm:Linalg.Svd.Golub_kahan stacked)
  in
  let worst = ref 0. in
  Array.iteri
    (fun i s ->
      worst := Stdlib.max !worst
          (abs_float (s -. dg.Linalg.Svd.sigma.(i)) /. (1. +. s)))
    dj.Linalg.Svd.sigma;
  Util.print_table
    ~header:[ "backend"; "pencil"; "time(s)"; "max sigma deviation" ]
    [ [ "one-sided Jacobi";
        Printf.sprintf "%dx%d" (Linalg.Cmat.rows stacked) (Linalg.Cmat.cols stacked);
        Util.fmt_time tj; "(reference)" ];
      [ "Golub-Kahan";
        Printf.sprintf "%dx%d" (Linalg.Cmat.rows stacked) (Linalg.Cmat.cols stacked);
        Util.fmt_time tg; Util.fmt_sci !worst ] ];

  Util.subheading "rank tolerance under noise (40 samples, 1% noise, t=2)";
  let rows =
    List.map
      (fun tol ->
        let e, rank, dt =
          fit_err
            { Algorithm1.default_options with
              weight = Tangential.Uniform 2;
              rank_rule = Svd_reduce.Tol tol }
            noisy40
        in
        [ Util.fmt_sci tol; string_of_int rank; Util.fmt_sci e; Util.fmt_time dt ])
      [ 1e-1; 3e-2; 1e-2; 3e-3; 1e-3; 1e-4 ]
  in
  Util.print_table ~header:[ "tol"; "order"; "validation ERR"; "time(s)" ] rows;
  Printf.printf
    "(too large truncates real modes; too small keeps noise modes)\n";

  Util.subheading "per-sample weighting on an ill-conditioned grid";
  (* The paper's Test 2 weights earlier (well-spread) samples more
     heavily ("t_i >= t_j for i < j").  On this workload uniform widths
     match or beat front-loaded ones — the trade-off is data-dependent,
     which is why Tangential.Per_sample exists as a knob. *)
  let clustered_freqs =
    Statespace.Sampling.clustered ~lo:100. ~hi:1e6 ~split:1e5 ~fraction:0.8 40
  in
  let clustered_noisy =
    Rf.Noise.add_relative ~seed:3 ~level:0.01
      (Statespace.Sampling.sample_system sys clustered_freqs)
  in
  let rows =
    List.map
      (fun (name, weight) ->
        let e, rank, dt =
          fit_err
            { Algorithm1.default_options with weight; rank_rule = noisy_rank }
            clustered_noisy
        in
        [ name; string_of_int rank; Util.fmt_sci e; Util.fmt_time dt ])
      [ ("uniform t=2", Tangential.Uniform 2);
        ("uniform t=3", Tangential.Uniform 3);
        ("front-loaded 3/1", Tangential.Per_sample
           (Array.init 40 (fun i -> if i < 20 then 3 else 1)));
        ("front-loaded 4/2", Tangential.Per_sample
           (Array.init 40 (fun i -> if i < 20 then 4 else 2))) ]
  in
  Util.print_table ~header:[ "weighting"; "order"; "validation ERR"; "time(s)" ] rows;

  Util.subheading "Algorithm 2 batch size (40 noisy samples, t=2)";
  let rows =
    List.map
      (fun batch ->
        let options =
          { Algorithm2.default_options with
            weight = Tangential.Uniform 2; batch; threshold = 0.03;
            rank_rule = noisy_rank }
        in
        let (r, dt) = Util.time_it (fun () -> Algorithm2.fit ~options noisy40) in
        let e = Metrics.err r.Algorithm2.model validation in
        [ string_of_int batch;
          Printf.sprintf "%d/%d" r.Algorithm2.selected_units r.Algorithm2.total_units;
          string_of_int r.Algorithm2.rank; Util.fmt_sci e; Util.fmt_time dt ])
      [ 2; 5; 10; 20 ]
  in
  Util.print_table
    ~header:[ "batch k0"; "units used"; "order"; "validation ERR"; "time(s)" ] rows;
  Printf.printf "%!"
