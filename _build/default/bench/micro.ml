(* Bechamel micro-benchmarks.

   One Test.make per paper table/figure pipeline, each on a scaled-down
   instance so bechamel can sample it repeatedly for tight statistics
   (the full-scale reproductions run in the fig1/fig2/table1/minsample
   harnesses, which print the paper-shaped output and wall-clock times). *)

open Bechamel
open Toolkit
open Statespace
open Mfti

(* shared fixtures, built once *)
let sys12 =
  Random_sys.generate
    { Random_sys.order = 12; ports = 3; rank_d = 3; freq_lo = 100.;
      freq_hi = 1e5; damping = 0.08; seed = 42 }

let samples12 = Sampling.sample_system sys12 (Sampling.logspace 100. 1e5 8)

let noisy12 = Rf.Noise.add_relative ~seed:5 ~level:0.01 samples12

let pdn_small = { Rf.Pdn.default_spec with nx = 4; ny = 4; ports = 4; decaps = 3 }

let pdn_model = Rf.Pdn.scattering_model pdn_small ~z0:50.

let pdn_samples =
  Sampling.sample_system pdn_model (Sampling.logspace 1e6 1e9 20)

let tangential12 = Tangential.build samples12

let touchstone_text =
  Rf.Touchstone.print
    { Rf.Touchstone.parameter = Rf.Touchstone.S; z0 = 50.; samples = pdn_samples }

let rng_matrix =
  let rng = Linalg.Rng.create 1 in
  Linalg.Cmat.random rng 60 60

let tests =
  Test.make_grouped ~name:"mfti" ~fmt:"%s %s"
    [ Test.make ~name:"fig1:loewner-build"
        (Staged.stage (fun () -> ignore (Loewner.build tangential12)));
      Test.make ~name:"fig1:svd-60x60"
        (Staged.stage (fun () -> ignore (Linalg.Svd.decompose rng_matrix)));
      Test.make ~name:"fig2:algorithm1-fit"
        (Staged.stage (fun () -> ignore (Algorithm1.fit samples12)));
      Test.make ~name:"fig2:vfti-fit"
        (Staged.stage (fun () -> ignore (Vfti.fit samples12)));
      Test.make ~name:"table1:mfti2-recursive"
        (Staged.stage (fun () ->
             let options =
               { Algorithm2.default_options with
                 weight = Tangential.Uniform 2; batch = 4; threshold = 0.03 }
             in
             ignore (Algorithm2.fit ~options noisy12)));
      Test.make ~name:"table1:vector-fitting-n12"
        (Staged.stage (fun () ->
             let options =
               { Vfit.Vf.default_options with n_poles = 12; iterations = 3 }
             in
             ignore (Vfit.Vf.fit ~options noisy12)));
      Test.make ~name:"table1:pdn-sampling"
        (Staged.stage (fun () ->
             ignore (Sampling.sample_system pdn_model [| 1e8; 5e8 |])));
      Test.make ~name:"substrate:mna-assembly"
        (Staged.stage (fun () ->
             ignore (Rf.Mna.to_descriptor (Rf.Pdn.build pdn_small))));
      Test.make ~name:"substrate:touchstone-parse"
        (Staged.stage (fun () ->
             ignore (Rf.Touchstone.parse ~nports:4 touchstone_text))) ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10)
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  results

let run () =
  Util.heading "Bechamel micro-benchmarks (scaled-down pipelines)";
  let results = benchmark () in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (value :: _) -> value
        | Some [] | None -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  Util.print_table
    ~header:[ "benchmark"; "time per run" ]
    (List.map
       (fun (name, ns) ->
         let pretty =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; pretty ])
       rows)
