(* Paper Fig. 1: singular-value patterns of LL, sLL and x0 LL - sLL for
   VFTI vs MFTI on Example 1: an order-150, 30-port system sampled at 8
   frequencies.

   Expected shape (paper): VFTI sees only 8 singular values with no drop;
   MFTI's 240-value spectra drop sharply at 150 (LL) and 180 (sLL and the
   pencil), i.e. at order and order + rank D. *)

open Statespace
open Mfti

let k_samples = 8

let run () =
  Util.heading "Figure 1: singular value patterns (VFTI vs MFTI)";
  let sys = Random_sys.example1 () in
  Printf.printf "system: order %d, %d ports, rank D %d, 8 matrix samples\n%!"
    (Descriptor.order sys) (Descriptor.inputs sys) 30;
  let samples = Sampling.sample_system sys (Sampling.logspace 10. 1e5 k_samples) in

  let svg_series = ref [] in
  let report name data =
    let pencil = Loewner.build data in
    let (ll_s, sll_s, pen_s), dt =
      Util.time_it (fun () -> Svd_reduce.fig1_singular_values pencil)
    in
    let to_points sigma =
      Array.mapi (fun i s -> (float_of_int (i + 1), s)) sigma
    in
    svg_series :=
      !svg_series
      @ [ { Plot.Svg.label = name ^ " LL"; points = to_points ll_s };
          { Plot.Svg.label = name ^ " sLL"; points = to_points sll_s };
          { Plot.Svg.label = name ^ " x0LL-sLL"; points = to_points pen_s } ];
    Util.subheading (Printf.sprintf "%s (pencil %dx%d, %.2f s of SVDs)" name
                       (Tangential.left_width data) (Tangential.right_width data) dt);
    let drop tagged =
      let d = { Linalg.Svd.u = Linalg.Cmat.create 0 0; sigma = tagged;
                v = Linalg.Cmat.create 0 0 } in
      Linalg.Svd.rank_gap d
    in
    Printf.printf "detected drops: LL at %d, sLL at %d, x0*LL-sLL at %d\n"
      (drop ll_s) (drop sll_s) (drop pen_s);
    Util.print_series ~name:(name ^ " sigma(LL)") ll_s;
    Util.print_series ~name:(name ^ " sigma(sLL)") sll_s;
    Util.print_series ~name:(name ^ " sigma(x0*LL - sLL)") pen_s;
    (drop ll_s, drop sll_s, drop pen_s)
  in

  let vfti_data = Tangential.build_vector samples in
  let v_drops = report "VFTI" vfti_data in
  let mfti_data = Tangential.build samples in
  let m_drops = report "MFTI" mfti_data in

  Util.subheading "summary (paper: VFTI no drop; MFTI drops at 150/180/180)";
  let d1, d2, d3 = v_drops and e1, e2, e3 = m_drops in
  Printf.printf "VFTI drops: %d %d %d (of 8; no informative drop expected)\n" d1 d2 d3;
  Printf.printf "MFTI drops: %d %d %d (expect 150, 180, 180)\n%!" e1 e2 e3;
  if not (Sys.file_exists "figures") then Sys.mkdir "figures" 0o755;
  Plot.Svg.write_file "figures/fig1_singular_values.svg"
    ~title:"Fig. 1: singular value patterns (VFTI vs MFTI)"
    ~xlabel:"singular value index" ~ylabel:"singular value"
    ~xaxis:Plot.Svg.Linear ~yaxis:Plot.Svg.Log !svg_series;
  Printf.printf "wrote figures/fig1_singular_values.svg\n%!"
