(* Paper Fig. 2: Bode magnitude (input 1 -> output 1) of the original
   order-150 30-port system and the models recovered by MFTI and VFTI
   from the same 8 matrix samples.

   Expected shape: the MFTI model overlays the original; the VFTI model
   (rank limited to 8) does not. *)

open Linalg
open Statespace
open Mfti

let run () =
  Util.heading "Figure 2: Bode magnitude of original vs MFTI vs VFTI models";
  let sys = Random_sys.example1 () in
  let samples = Sampling.sample_system sys (Sampling.logspace 10. 1e5 8) in

  let mfti, t_mfti = Util.time_it (fun () -> Algorithm1.fit samples) in
  let vfti, t_vfti = Util.time_it (fun () -> Vfti.fit samples) in
  Printf.printf "MFTI model: order %d (%.2f s); VFTI model: order %d (%.2f s)\n%!"
    mfti.Algorithm1.rank t_mfti vfti.Algorithm1.rank t_vfti;

  let grid = Sampling.logspace 10. 1e5 120 in
  Printf.printf "# columns: freq_hz |H11_original| |H11_mfti| |H11_vfti|\n";
  Array.iter
    (fun f ->
      let h s = Cx.abs (Cmat.get (Descriptor.eval_freq s f) 0 0) in
      Printf.printf "%.6e %.6e %.6e %.6e\n" f (h sys)
        (h mfti.Algorithm1.model) (h vfti.Algorithm1.model))
    grid;
  let curve name model =
    { Plot.Svg.label = name;
      points =
        Array.map
          (fun f ->
            (f, Cx.abs (Cmat.get (Descriptor.eval_freq model f) 0 0)))
          grid }
  in
  if not (Sys.file_exists "figures") then Sys.mkdir "figures" 0o755;
  Plot.Svg.write_file "figures/fig2_bode.svg"
    ~title:"Fig. 2: |H11| of original vs recovered models (8 samples)"
    ~xlabel:"frequency (Hz)" ~ylabel:"magnitude"
    ~xaxis:Plot.Svg.Log ~yaxis:Plot.Svg.Log
    [ curve "original" sys;
      curve "MFTI model" mfti.Algorithm1.model;
      curve "VFTI model" vfti.Algorithm1.model ];
  Printf.printf "wrote figures/fig2_bode.svg\n";
  let validation = Sampling.sample_system sys grid in
  Printf.printf "\nvalidation ERR over the plotted band:\n";
  Printf.printf "  MFTI %.3e (expect ~machine precision)\n"
    (Metrics.err mfti.Algorithm1.model validation);
  Printf.printf "  VFTI %.3e (expect O(1): samples inadequate)\n%!"
    (Metrics.err vfti.Algorithm1.model validation)
