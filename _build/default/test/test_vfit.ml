(* Tests for the vector-fitting baseline. *)

open Linalg
open Statespace
open Vfit

let check_small ?(tol = 1e-9) msg x =
  if abs_float x > tol then Alcotest.failf "%s: |%.3g| exceeds tol %.1g" msg x tol

let cx re im = Cx.make re im

(* ------------------------------------------------------------------ *)
(* Basis *)

let test_basis_initial () =
  let b = Basis.initial ~n:8 ~freq_lo:10. ~freq_hi:1e5 in
  Alcotest.(check int) "size" 8 (Basis.size b);
  let ps = Basis.poles b in
  Alcotest.(check int) "pole count" 8 (Array.length ps);
  Array.iter
    (fun p -> Alcotest.(check bool) "stable start" true (Cx.re p < 0.))
    ps;
  (* conjugate closure *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) "conjugate present" true
        (Array.exists (fun q -> Cx.abs (Cx.sub q (Cx.conj p)) < 1e-9 *. (1. +. Cx.abs p)) ps))
    ps

let test_basis_initial_odd () =
  let b = Basis.initial ~n:7 ~freq_lo:10. ~freq_hi:1e4 in
  Alcotest.(check int) "size" 7 (Basis.size b);
  let reals =
    Array.to_list (Basis.poles b) |> List.filter (fun p -> Cx.im p = 0.)
  in
  Alcotest.(check int) "one real pole" 1 (List.length reals)

let test_basis_row_residues_agree () =
  (* sum_n coeff_n phi_n(s) must equal sum_poles residue/(s - pole) *)
  let b = Basis.initial ~n:5 ~freq_lo:100. ~freq_hi:1e4 in
  let rng = Rng.create 8 in
  let coeffs = Array.init 5 (fun _ -> Rng.gaussian rng) in
  let residues = Basis.residues b coeffs in
  let poles = Basis.poles b in
  let s = cx 12.5 7777. in
  let via_basis =
    let row = Basis.row b s in
    Array.fold_left Cx.add Cx.zero
      (Array.mapi (fun i f -> Cx.scale coeffs.(i) f) row)
  in
  let via_residues =
    Array.fold_left Cx.add Cx.zero
      (Array.mapi (fun i r -> Cx.div r (Cx.sub s poles.(i))) residues)
  in
  check_small ~tol:1e-12 "basis = residue form"
    (Cx.abs (Cx.sub via_basis via_residues))

let test_basis_of_poles_round_trip () =
  let b = Basis.initial ~n:6 ~freq_lo:10. ~freq_hi:1e3 in
  let ps = Basis.poles b in
  let b2 = Basis.of_poles ps in
  Alcotest.(check int) "size preserved" 6 (Basis.size b2);
  let ps2 = Basis.poles b2 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "pole preserved" true
        (Array.exists (fun q -> Cx.abs (Cx.sub q p) < 1e-9 *. (1. +. Cx.abs p)) ps2))
    ps

let test_relocation_identity () =
  (* zero sigma coefficients: the relocation matrix is just A, whose
     eigenvalues are the current poles *)
  let b = Basis.initial ~n:4 ~freq_lo:10. ~freq_hi:1e3 in
  let m = Basis.relocation_matrix b (Array.make 4 0.) in
  let eigs = Eig.eigenvalues_real m in
  let ps = Basis.poles b in
  Array.iter
    (fun p ->
      let best =
        Array.fold_left (fun acc e -> Stdlib.min acc (Cx.abs (Cx.sub p e)))
          infinity eigs
      in
      check_small ~tol:1e-6 "eig = pole" (best /. (1. +. Cx.abs p)))
    ps

let test_enforce_stability () =
  let b = { Basis.groups = [| Basis.Real 3.; Basis.Pair (cx 2. 5.) |] } in
  let b' = Basis.enforce_stability b in
  Array.iter
    (fun p -> Alcotest.(check bool) "now stable" true (Cx.re p < 0.))
    (Basis.poles b')

(* ------------------------------------------------------------------ *)
(* Vf on known systems *)

let siso_system =
  (* two resonant pairs, order 4 *)
  Random_sys.generate
    { Random_sys.order = 4; ports = 1; rank_d = 0; freq_lo = 100.;
      freq_hi = 1e4; damping = 0.1; seed = 21 }

let mimo_system =
  Random_sys.generate
    { Random_sys.order = 8; ports = 2; rank_d = 2; freq_lo = 100.;
      freq_hi = 1e4; damping = 0.1; seed = 22 }

let fit_and_err sys ~n_poles ~k =
  let samples = Sampling.sample_system sys (Sampling.logspace 50. 2e4 k) in
  let options = { Vf.default_options with n_poles; selection = Vf.All } in
  let model, _ = Vf.fit ~options samples in
  let validation = Sampling.sample_system sys (Sampling.logspace 80. 1.5e4 37) in
  (model, Vf.err model validation)

let test_vf_siso_exact_order () =
  let model, e = fit_and_err siso_system ~n_poles:4 ~k:40 in
  Alcotest.(check int) "order" 4 (Vf.order model);
  check_small ~tol:1e-6 "validation ERR" e;
  (* recovered poles match the true system poles *)
  let true_poles = Eig.eigenvalues siso_system.Descriptor.a in
  Array.iter
    (fun p ->
      let best =
        Array.fold_left (fun acc q -> Stdlib.min acc (Cx.abs (Cx.sub p q)))
          infinity true_poles
      in
      check_small ~tol:1e-3 "pole recovered" (best /. (1. +. Cx.abs p)))
    (Vf.poles model)

let test_vf_mimo () =
  let _, e = fit_and_err mimo_system ~n_poles:10 ~k:60 in
  check_small ~tol:1e-5 "MIMO validation ERR" e

let test_vf_diagonal_selection () =
  let samples = Sampling.sample_system mimo_system (Sampling.logspace 50. 2e4 60) in
  let options = { Vf.default_options with n_poles = 10; selection = Vf.Diagonal } in
  let model, _ = Vf.fit ~options samples in
  let validation = Sampling.sample_system mimo_system (Sampling.logspace 80. 1.5e4 31) in
  check_small ~tol:1e-4 "diagonal-selection ERR" (Vf.err model validation)

let test_vf_stability_enforced () =
  let model, _ = fit_and_err mimo_system ~n_poles:12 ~k:50 in
  Array.iter
    (fun p -> Alcotest.(check bool) "stable pole" true (Cx.re p < 0.))
    (Vf.poles model)

let test_vf_model_real () =
  let model, _ = fit_and_err mimo_system ~n_poles:8 ~k:50 in
  check_small "D real" (Cmat.max_imag model.Vf.d);
  Array.iter (fun c -> check_small "coeff real" (Cmat.max_imag c)) model.Vf.coeffs;
  (* H(conj s) = conj H(s) *)
  let s = cx 0. 5000. in
  let h1 = Vf.eval model s and h2 = Vf.eval model (Cx.conj s) in
  check_small ~tol:1e-10 "conjugate symmetry"
    (Cmat.norm_fro (Cmat.sub h2 (Cmat.conj h1)))

let test_vf_to_descriptor () =
  let model, _ = fit_and_err mimo_system ~n_poles:6 ~k:50 in
  let sys = Vf.to_descriptor model in
  Alcotest.(check int) "realization order" (6 * 2) (Descriptor.order sys);
  Alcotest.(check bool) "real realization" true (Descriptor.is_real sys);
  (* descriptor evaluation matches partial-fraction evaluation *)
  List.iter
    (fun f ->
      let h1 = Vf.eval_freq model f in
      let h2 = Descriptor.eval_freq sys f in
      check_small ~tol:1e-8 "realization matches"
        (Cmat.norm_fro (Cmat.sub h1 h2) /. (1. +. Cmat.norm_fro h1)))
    [ 123.; 1e3; 9e3 ]

let test_vf_history () =
  let samples = Sampling.sample_system siso_system (Sampling.logspace 50. 2e4 30) in
  let options = { Vf.default_options with n_poles = 4; iterations = 5 } in
  let _, diag = Vf.fit ~options samples in
  Alcotest.(check int) "iterations" 5 diag.Vf.iterations_run;
  Alcotest.(check int) "history length" 6 (Array.length diag.Vf.pole_history)

let test_vf_validation () =
  let samples = Sampling.sample_system siso_system (Sampling.logspace 50. 2e4 10) in
  (match Vf.fit ~options:{ Vf.default_options with n_poles = 0 } samples with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "0 poles accepted");
  match Vf.fit [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty samples accepted"

let test_vf_determinism () =
  let m1, _ = fit_and_err siso_system ~n_poles:4 ~k:30 in
  let m2, _ = fit_and_err siso_system ~n_poles:4 ~k:30 in
  Alcotest.(check bool) "same D" true (Cmat.equal ~tol:0. m1.Vf.d m2.Vf.d)

let () =
  Alcotest.run "vfit"
    [ ("basis",
       [ Alcotest.test_case "initial" `Quick test_basis_initial;
         Alcotest.test_case "initial odd" `Quick test_basis_initial_odd;
         Alcotest.test_case "row/residues agree" `Quick test_basis_row_residues_agree;
         Alcotest.test_case "of_poles round trip" `Quick test_basis_of_poles_round_trip;
         Alcotest.test_case "relocation identity" `Quick test_relocation_identity;
         Alcotest.test_case "enforce stability" `Quick test_enforce_stability ]);
      ("vf",
       [ Alcotest.test_case "siso exact order" `Quick test_vf_siso_exact_order;
         Alcotest.test_case "mimo" `Quick test_vf_mimo;
         Alcotest.test_case "diagonal selection" `Quick test_vf_diagonal_selection;
         Alcotest.test_case "stability enforced" `Quick test_vf_stability_enforced;
         Alcotest.test_case "real model" `Quick test_vf_model_real;
         Alcotest.test_case "to_descriptor" `Quick test_vf_to_descriptor;
         Alcotest.test_case "history" `Quick test_vf_history;
         Alcotest.test_case "validation" `Quick test_vf_validation;
         Alcotest.test_case "determinism" `Quick test_vf_determinism ]) ]
