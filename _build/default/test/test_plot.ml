(* Tests for the SVG chart writer. *)

let series label points = { Plot.Svg.label; points }

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let render_simple () =
  Plot.Svg.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
    ~xaxis:Plot.Svg.Linear ~yaxis:Plot.Svg.Linear
    [ series "alpha" [| (0., 1.); (1., 2.); (2., 0.5) |];
      series "beta" [| (0., 3.); (2., 1.) |] ]

let test_render_basic () =
  let svg = render_simple () in
  Alcotest.(check bool) "is svg" true (contains ~needle:"<svg" svg);
  Alcotest.(check bool) "closes" true (contains ~needle:"</svg>" svg);
  Alcotest.(check bool) "legend alpha" true (contains ~needle:"alpha" svg);
  Alcotest.(check bool) "legend beta" true (contains ~needle:"beta" svg);
  (* two data paths *)
  let count needle s =
    let n = ref 0 and i = ref 0 in
    let nl = String.length needle in
    while !i + nl <= String.length s do
      if String.sub s !i nl = needle then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check int) "two paths" 2 (count "<path" svg)

let test_render_escapes () =
  let svg =
    Plot.Svg.render ~title:"a < b & c" ~xlabel:"x" ~ylabel:"y"
      ~xaxis:Plot.Svg.Linear ~yaxis:Plot.Svg.Linear
      [ series "s" [| (0., 1.); (1., 1.) |] ]
  in
  Alcotest.(check bool) "escaped" true (contains ~needle:"a &lt; b &amp; c" svg);
  Alcotest.(check bool) "no raw <b" false (contains ~needle:"a < b" svg)

let test_log_axis_filters () =
  (* nonpositive values must be dropped, not crash the log transform *)
  let svg =
    Plot.Svg.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
      ~xaxis:Plot.Svg.Log ~yaxis:Plot.Svg.Log
      [ series "s" [| (1., 1.); (10., 0.1); (-5., 3.); (100., 0.) |] ]
  in
  Alcotest.(check bool) "rendered" true (contains ~needle:"<path" svg);
  Alcotest.(check bool) "decade tick" true (contains ~needle:"1e" svg)

let test_render_empty_rejected () =
  (match Plot.Svg.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
           ~xaxis:Plot.Svg.Linear ~yaxis:Plot.Svg.Linear [] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty accepted");
  (* all-filtered is also empty *)
  match Plot.Svg.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
          ~xaxis:Plot.Svg.Log ~yaxis:Plot.Svg.Log
          [ series "s" [| (-1., -1.) |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "all-filtered accepted"

let test_render_nan_skipped () =
  let svg =
    Plot.Svg.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
      ~xaxis:Plot.Svg.Linear ~yaxis:Plot.Svg.Linear
      [ series "s" [| (0., 1.); (1., Float.nan); (2., 2.) |] ]
  in
  Alcotest.(check bool) "no nan in output" false (contains ~needle:"nan" svg)

let test_write_file () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "mfti_plot_test.svg" in
  Plot.Svg.write_file path ~title:"t" ~xlabel:"x" ~ylabel:"y"
    ~xaxis:Plot.Svg.Linear ~yaxis:Plot.Svg.Linear
    [ series "s" [| (0., 0.); (1., 1.) |] ];
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file holds svg" true (contains ~needle:"</svg>" text)

let test_single_point () =
  (* degenerate ranges must not divide by zero *)
  let svg =
    Plot.Svg.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
      ~xaxis:Plot.Svg.Linear ~yaxis:Plot.Svg.Linear
      [ series "s" [| (5., 5.) |] ]
  in
  Alcotest.(check bool) "rendered" true (contains ~needle:"<path" svg);
  Alcotest.(check bool) "finite coordinates" false (contains ~needle:"nan" svg)

let () =
  Alcotest.run "plot"
    [ ("svg",
       [ Alcotest.test_case "basic" `Quick test_render_basic;
         Alcotest.test_case "escaping" `Quick test_render_escapes;
         Alcotest.test_case "log filtering" `Quick test_log_axis_filters;
         Alcotest.test_case "empty rejected" `Quick test_render_empty_rejected;
         Alcotest.test_case "nan skipped" `Quick test_render_nan_skipped;
         Alcotest.test_case "file io" `Quick test_write_file;
         Alcotest.test_case "single point" `Quick test_single_point ]) ]
