test/test_rf.mli:
