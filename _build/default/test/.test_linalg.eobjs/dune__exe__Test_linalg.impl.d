test/test_linalg.ml: Alcotest Array Chol Cmat Cx Eig Expm Float Format Fun Linalg List Lu Lyapunov Printf QCheck QCheck_alcotest Qr Rmat Rng Sparse Sparse_lu Svd Sylvester
