test/test_vfit.mli:
