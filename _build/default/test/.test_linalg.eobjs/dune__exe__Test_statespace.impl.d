test/test_statespace.ml: Alcotest Array Cmat Cx Descriptor Eig Filename Linalg List Poles Printf QCheck QCheck_alcotest Random_sys Reduction Sampling Stabilize Statespace Stdlib Svd Sys Timedomain
