test/test_mfti.mli:
