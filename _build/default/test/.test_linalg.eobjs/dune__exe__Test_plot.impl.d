test/test_plot.ml: Alcotest Filename Float Plot String Sys
