test/test_vfit.ml: Alcotest Array Basis Cmat Cx Descriptor Eig Linalg List Random_sys Rng Sampling Statespace Stdlib Vf Vfit
