test/test_statespace.mli:
