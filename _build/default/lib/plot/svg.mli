(** Minimal dependency-free SVG line charts.

    Enough to render the paper's figures (singular-value patterns, Bode
    magnitudes) straight from the bench harness: linear/log axes with
    decade ticks, multiple series with a legend, nothing interactive.
    Output is a self-contained [.svg] file. *)

type axis = Linear | Log

type series = {
  label : string;
  points : (float * float) array;  (** (x, y); non-finite points are skipped *)
}

(** [render ?width ?height ?colors ~title ~xlabel ~ylabel ~xaxis ~yaxis series]
    returns the SVG document.  On a log axis, nonpositive values are
    dropped.  Raises [Invalid_argument] when nothing remains to plot. *)
val render :
  ?width:int -> ?height:int -> ?colors:string array ->
  title:string -> xlabel:string -> ylabel:string ->
  xaxis:axis -> yaxis:axis -> series list -> string

(** [write_file path ...] renders straight to disk. *)
val write_file :
  string ->
  ?width:int -> ?height:int -> ?colors:string array ->
  title:string -> xlabel:string -> ylabel:string ->
  xaxis:axis -> yaxis:axis -> series list -> unit
