lib/plot/svg.ml: Array Buffer Float List Printf Stdlib String
