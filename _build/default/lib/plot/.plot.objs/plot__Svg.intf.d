lib/plot/svg.mli:
