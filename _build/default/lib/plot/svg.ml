type axis = Linear | Log

type series = {
  label : string;
  points : (float * float) array;
}

let default_colors =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b";
     "#e377c2"; "#17becf" |]

let margin_left = 70.
let margin_right = 20.
let margin_top = 40.
let margin_bottom = 55.

let transform axis v = match axis with Linear -> v | Log -> log10 v

let usable (xaxis, yaxis) (x, y) =
  Float.is_finite x && Float.is_finite y
  && (match xaxis with Linear -> true | Log -> x > 0.)
  && (match yaxis with Linear -> true | Log -> y > 0.)

(* tick positions covering [lo, hi] in transformed coordinates *)
let ticks axis lo hi =
  match axis with
  | Log ->
    (* decade ticks *)
    let first = Float.ceil lo and last = Float.floor hi in
    let out = ref [] in
    let v = ref first in
    while !v <= last +. 1e-9 do
      out := !v :: !out;
      v := !v +. Stdlib.max 1. (Float.round ((hi -. lo) /. 8.))
    done;
    List.rev !out
  | Linear ->
    let span = hi -. lo in
    if span <= 0. then [ lo ]
    else begin
      let raw = span /. 6. in
      let mag = 10. ** Float.floor (log10 raw) in
      let step =
        let r = raw /. mag in
        if r < 1.5 then mag else if r < 3.5 then 2. *. mag else 5. *. mag
      in
      let first = Float.ceil (lo /. step) *. step in
      let out = ref [] in
      let v = ref first in
      while !v <= hi +. (1e-9 *. span) do
        out := !v :: !out;
        v := !v +. step
      done;
      List.rev !out
    end

let tick_label axis v =
  match axis with
  | Log ->
    let e = int_of_float (Float.round v) in
    if abs_float (v -. Float.round v) < 1e-6 then Printf.sprintf "1e%d" e
    else Printf.sprintf "%.3g" (10. ** v)
  | Linear -> Printf.sprintf "%.3g" v

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(width = 760) ?(height = 480) ?(colors = default_colors)
    ~title ~xlabel ~ylabel ~xaxis ~yaxis series_list =
  let axes = (xaxis, yaxis) in
  let cleaned =
    List.map
      (fun s ->
        { s with
          points =
            Array.of_list
              (List.filter (usable axes) (Array.to_list s.points)) })
      series_list
    |> List.filter (fun s -> Array.length s.points > 0)
  in
  if cleaned = [] then invalid_arg "Svg.render: nothing to plot";
  let all =
    List.concat_map (fun s -> Array.to_list s.points) cleaned
    |> List.map (fun (x, y) -> (transform xaxis x, transform yaxis y))
  in
  let xs = List.map fst all and ys = List.map snd all in
  let pad lo hi =
    if hi -. lo < 1e-12 then (lo -. 1., hi +. 1.)
    else (lo -. (0.03 *. (hi -. lo)), hi +. (0.03 *. (hi -. lo)))
  in
  let xlo, xhi = pad (List.fold_left min infinity xs) (List.fold_left max neg_infinity xs) in
  let ylo, yhi = pad (List.fold_left min infinity ys) (List.fold_left max neg_infinity ys) in
  let w = float_of_int width and h = float_of_int height in
  let plot_w = w -. margin_left -. margin_right in
  let plot_h = h -. margin_top -. margin_bottom in
  let px x = margin_left +. (plot_w *. (x -. xlo) /. (xhi -. xlo)) in
  let py y = margin_top +. (plot_h *. (1. -. ((y -. ylo) /. (yhi -. ylo)))) in
  let buf = Buffer.create 16384 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
       viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"12\">\n"
    width height width height;
  out "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  out "<text x=\"%g\" y=\"22\" text-anchor=\"middle\" font-size=\"15\">%s</text>\n"
    (w /. 2.) (escape title);
  (* frame *)
  out "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" fill=\"none\" \
       stroke=\"#333\"/>\n" margin_left margin_top plot_w plot_h;
  (* ticks + grid *)
  List.iter
    (fun tv ->
      if tv >= xlo && tv <= xhi then begin
        let x = px tv in
        out "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#ddd\"/>\n"
          x margin_top x (margin_top +. plot_h);
        out "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>\n" x
          (margin_top +. plot_h +. 18.) (tick_label xaxis tv)
      end)
    (ticks xaxis xlo xhi);
  List.iter
    (fun tv ->
      if tv >= ylo && tv <= yhi then begin
        let y = py tv in
        out "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#ddd\"/>\n"
          margin_left y (margin_left +. plot_w) y;
        out "<text x=\"%g\" y=\"%g\" text-anchor=\"end\">%s</text>\n"
          (margin_left -. 6.) (y +. 4.) (tick_label yaxis tv)
      end)
    (ticks yaxis ylo yhi);
  (* axis labels *)
  out "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>\n" (w /. 2.)
    (h -. 12.) (escape xlabel);
  out "<text x=\"16\" y=\"%g\" text-anchor=\"middle\" \
       transform=\"rotate(-90 16 %g)\">%s</text>\n"
    (h /. 2.) (h /. 2.) (escape ylabel);
  (* series *)
  List.iteri
    (fun idx s ->
      let color = colors.(idx mod Array.length colors) in
      let path = Buffer.create 1024 in
      Array.iteri
        (fun i (x, y) ->
          let cmd = if i = 0 then 'M' else 'L' in
          Buffer.add_string path
            (Printf.sprintf "%c%.2f %.2f " cmd
               (px (transform xaxis x))
               (py (transform yaxis y))))
        s.points;
      out "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.6\"/>\n"
        (Buffer.contents path) color;
      (* legend *)
      let ly = margin_top +. 14. +. (16. *. float_of_int idx) in
      out "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"%s\" \
           stroke-width=\"2.5\"/>\n"
        (margin_left +. plot_w -. 150.) ly (margin_left +. plot_w -. 125.) ly
        color;
      out "<text x=\"%g\" y=\"%g\">%s</text>\n"
        (margin_left +. plot_w -. 118.) (ly +. 4.) (escape s.label))
    cleaned;
  out "</svg>\n";
  Buffer.contents buf

let write_file path ?width ?height ?colors ~title ~xlabel ~ylabel ~xaxis
    ~yaxis series_list =
  let svg =
    render ?width ?height ?colors ~title ~xlabel ~ylabel ~xaxis ~yaxis
      series_list
  in
  let oc = open_out path in
  output_string oc svg;
  close_out oc
