(** Sparse complex matrices (compressed sparse column).

    MNA matrices are extremely sparse (a handful of entries per row);
    at a few hundred states dense LU is fine, but plane-grid PDNs reach
    thousands of states where dense O(n^3) sweeps become the bottleneck.
    Assembly happens in triplet form (duplicates accumulate, matching
    MNA stamping); computation uses CSC. *)

(** Mutable triplet builder. *)
type builder

(** Immutable CSC matrix. *)
type t = private {
  rows : int;
  cols : int;
  colptr : int array;   (** length [cols + 1] *)
  rowind : int array;   (** length [nnz], row indices, sorted per column *)
  re : float array;
  im : float array;
}

val create : rows:int -> cols:int -> builder

(** [add b i j z] accumulates [z] onto entry [(i, j)]. *)
val add : builder -> int -> int -> Cx.t -> unit

(** Compress to CSC (duplicates summed, explicit zeros kept out). *)
val compress : builder -> t

val nnz : t -> int
val dims : t -> int * int

(** [scale_add ~alpha a ~beta b] = [alpha A + beta B] (same dims). *)
val scale_add : alpha:Cx.t -> t -> beta:Cx.t -> t -> t

(** [mul_vec a x] = [A x] for a dense vector ([n x 1] {!Cmat.t}). *)
val mul_vec : t -> Cmat.t -> Cmat.t

val to_dense : t -> Cmat.t
val of_dense : ?drop_tol:float -> Cmat.t -> t

(** Reverse Cuthill–McKee ordering of the symmetrized pattern — the
    classic bandwidth-reducing permutation, which curbs LU fill on
    mesh-like (MNA) matrices.  Returns [perm] with
    [perm.(new_position) = old_index]. *)
val rcm_ordering : t -> int array

(** [permute a ~perm] applies the symmetric permutation:
    [B(i, j) = A(perm.(i), perm.(j))].  [perm] must be a permutation of
    [0 .. n-1] for square [a]. *)
val permute : t -> perm:int array -> t
