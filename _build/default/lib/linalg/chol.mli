(** Cholesky factorization of Hermitian positive-definite matrices.

    [A = L L*] with lower-triangular [L].  Used for fast SPD solves and
    as a positive-definiteness test. *)

exception Not_positive_definite of int
(** Raised with the failing pivot index. *)

(** [factorize a] returns lower-triangular [L].  Only the lower triangle
    of [a] is read (the strict upper triangle is ignored, so slightly
    non-Hermitian inputs from roundoff are fine). *)
val factorize : Cmat.t -> Cmat.t

(** [solve l b] solves [L L* x = b] given the factor [l]. *)
val solve : Cmat.t -> Cmat.t -> Cmat.t

(** [is_positive_definite a] tests by attempting the factorization. *)
val is_positive_definite : Cmat.t -> bool
