(** Continuous-time Lyapunov equations [A X + X A* + Q = 0].

    Solved with the matrix sign-function iteration
    [Z <- (Z + Z^{-1})/2] applied to the Hamiltonian-like embedding
    [[A, Q]; [0, -A*]] — quadratically convergent for any stable [A]
    (all eigenvalues in the open left half-plane), requiring only LU
    solves.  This powers the controllability/observability Gramians
    behind balanced truncation. *)

exception Not_stable
(** Raised when the iteration fails to converge, which for this equation
    means [A] has eigenvalues on or right of the imaginary axis. *)

(** [solve ~a ~q] returns [X] with [A X + X A* + Q = 0].  [q] must be
    square of the same size (typically Hermitian: [B B*] or [C* C]). *)
val solve : a:Cmat.t -> q:Cmat.t -> Cmat.t

(** Frobenius norm of [A X + X A* + Q] (for tests). *)
val residual : a:Cmat.t -> q:Cmat.t -> Cmat.t -> float
