type t = { rows : int; cols : int; data : float array }

let check_dims rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Rmat: negative dimension"

let create rows cols =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) 0. }

let zeros = create

let init rows cols f =
  let m = create rows cols in
  for jcol = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      m.data.(i + (jcol * rows)) <- f i jcol
    done
  done;
  m

let identity n = init n n (fun i jcol -> if i = jcol then 1. else 0.)

let of_rows rows_list =
  match rows_list with
  | [] -> create 0 0
  | first :: _ ->
    let rows = List.length rows_list and cols = List.length first in
    let m = create rows cols in
    List.iteri
      (fun i row ->
        if List.length row <> cols then invalid_arg "Rmat.of_rows: ragged rows";
        List.iteri (fun jcol x -> m.data.(i + (jcol * rows)) <- x) row)
      rows_list;
    m

let random rng rows cols = init rows cols (fun _ _ -> Rng.gaussian rng)
let dims m = (m.rows, m.cols)
let get m i jcol = m.data.(i + (jcol * m.rows))
let set m i jcol x = m.data.(i + (jcol * m.rows)) <- x
let copy m = { m with data = Array.copy m.data }

let transpose m =
  init m.cols m.rows (fun i jcol -> get m jcol i)

let map f m = { m with data = Array.map f m.data }

let same_dims a b op =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Rmat.%s: dimension mismatch %dx%d vs %dx%d"
                   op a.rows a.cols b.rows b.cols)

let add a b =
  same_dims a b "add";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  same_dims a b "sub";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }
let neg m = scale (-1.) m

let mul a b =
  if a.cols <> b.rows then
    invalid_arg (Printf.sprintf "Rmat.mul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  let c = create a.rows b.cols in
  (* Column-major gemm: accumulate column jcol of C from columns of A. *)
  for jcol = 0 to b.cols - 1 do
    let coff = jcol * a.rows in
    for k = 0 to a.cols - 1 do
      let bkj = b.data.(k + (jcol * b.rows)) in
      if bkj <> 0. then begin
        let aoff = k * a.rows in
        for i = 0 to a.rows - 1 do
          c.data.(coff + i) <- c.data.(coff + i) +. (a.data.(aoff + i) *. bkj)
        done
      end
    done
  done;
  c

let mul_tn a b =
  if a.rows <> b.rows then invalid_arg "Rmat.mul_tn: dimension mismatch";
  let c = create a.cols b.cols in
  for jcol = 0 to b.cols - 1 do
    for i = 0 to a.cols - 1 do
      let aoff = i * a.rows and boff = jcol * b.rows in
      let acc = ref 0. in
      for k = 0 to a.rows - 1 do
        acc := !acc +. (a.data.(aoff + k) *. b.data.(boff + k))
      done;
      c.data.(i + (jcol * a.cols)) <- !acc
    done
  done;
  c

let col m jcol = Array.sub m.data (jcol * m.rows) m.rows
let row m i = Array.init m.cols (fun jcol -> get m i jcol)

let set_col m jcol v =
  if Array.length v <> m.rows then invalid_arg "Rmat.set_col: length mismatch";
  Array.blit v 0 m.data (jcol * m.rows) m.rows

let sub_matrix m ~r ~c ~rows ~cols =
  if r < 0 || c < 0 || r + rows > m.rows || c + cols > m.cols then
    invalid_arg "Rmat.sub_matrix: block out of range";
  init rows cols (fun i jcol -> get m (r + i) (c + jcol))

let set_sub m ~r ~c blk =
  if r < 0 || c < 0 || r + blk.rows > m.rows || c + blk.cols > m.cols then
    invalid_arg "Rmat.set_sub: block out of range";
  for jcol = 0 to blk.cols - 1 do
    Array.blit blk.data (jcol * blk.rows) m.data (r + ((c + jcol) * m.rows)) blk.rows
  done

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Rmat.hcat: row mismatch";
  let m = create a.rows (a.cols + b.cols) in
  Array.blit a.data 0 m.data 0 (Array.length a.data);
  Array.blit b.data 0 m.data (Array.length a.data) (Array.length b.data);
  m

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Rmat.vcat: column mismatch";
  let m = create (a.rows + b.rows) a.cols in
  set_sub m ~r:0 ~c:0 a;
  set_sub m ~r:a.rows ~c:0 b;
  m

let norm_fro m =
  Stdlib.sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let max_abs m = Array.fold_left (fun acc x -> Stdlib.max acc (abs_float x)) 0. m.data

let trace m =
  let n = Stdlib.min m.rows m.cols in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let equal ~tol a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> abs_float (x -. y) <= tol) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for jcol = 0 to m.cols - 1 do
      if jcol > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get m i jcol)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
