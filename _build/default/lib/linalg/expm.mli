(** Matrix exponential.

    Scaling-and-squaring with a diagonal Padé(6,6) approximant — the
    classic Moler–Van Loan "method 3".  Used for exact discretization of
    LTI models ([x(t+h) = e^{Ah} x(t) + ...]), which gives the reference
    solutions the time-domain integrators are tested against. *)

(** [expm a] computes [e^A] for square [a]. *)
val expm : Cmat.t -> Cmat.t

(** [expm_scaled a t] computes [e^{At}] without forming [At] at the call
    site. *)
val expm_scaled : Cmat.t -> float -> Cmat.t
