(** Deterministic pseudo-random numbers.

    Every stochastic choice in the library (interpolation directions,
    random test systems, measurement noise) goes through this module so
    that experiments are reproducible from a single integer seed.  The
    generator is SplitMix64, which is small, fast and has no bad seeds. *)

type t

(** [create seed] makes an independent generator.  Equal seeds produce
    equal streams. *)
val create : int -> t

(** [split rng] derives a fresh generator whose stream is independent of
    subsequent draws from [rng]. *)
val split : t -> t

(** Next raw 64-bit value. *)
val bits : t -> int64

(** [int rng n] draws uniformly from [0 .. n-1].  [n] must be positive. *)
val int : t -> int -> int

(** Uniform in [[0, 1)]. *)
val uniform : t -> float

(** [range rng lo hi] draws uniformly from [[lo, hi)]. *)
val range : t -> float -> float -> float

(** Standard normal deviate (Box–Muller). *)
val gaussian : t -> float

(** Complex number with independent standard normal parts. *)
val complex_gaussian : t -> Cx.t

(** [shuffle rng a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
