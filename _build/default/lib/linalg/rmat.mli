(** Dense real matrices.

    Storage is column-major ([a.(i + j*rows)]) so that the column-oriented
    factorization kernels (QR, Jacobi SVD) touch contiguous memory.
    Indices are zero-based.  All operations allocate fresh results unless
    the name says otherwise ([set], [set_sub], ...). *)

type t = private { rows : int; cols : int; data : float array }

val create : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val zeros : int -> int -> t

(** [of_rows [[a;b]; [c;d]]] builds a matrix from row lists. *)
val of_rows : float list list -> t

val random : Rng.t -> int -> int -> t
val dims : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val map : (float -> float) -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** [mul_tn a b] is [transpose a * b] without forming the transpose. *)
val mul_tn : t -> t -> t

val col : t -> int -> float array
val row : t -> int -> float array
val set_col : t -> int -> float array -> unit

(** [sub_matrix a ~r ~c ~rows ~cols] copies the given block. *)
val sub_matrix : t -> r:int -> c:int -> rows:int -> cols:int -> t

val set_sub : t -> r:int -> c:int -> t -> unit
val hcat : t -> t -> t
val vcat : t -> t -> t
val norm_fro : t -> float
val max_abs : t -> float
val trace : t -> float
val equal : tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
