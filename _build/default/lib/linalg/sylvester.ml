let check ~mu ~lambda f =
  let rows, cols = Cmat.dims f in
  if Array.length mu <> rows || Array.length lambda <> cols then
    invalid_arg "Sylvester: diagonal lengths do not match the right-hand side"

let solve_diag ~mu ~lambda f =
  check ~mu ~lambda f;
  Cmat.mapi
    (fun i jcol fij ->
      let denom = Cx.sub lambda.(jcol) mu.(i) in
      if Cx.abs denom = 0. then
        invalid_arg "Sylvester.solve_diag: lambda_j = mu_i makes the equation singular";
      Cx.div fij denom)
    f

let residual ~mu ~lambda x f =
  check ~mu ~lambda f;
  let rows, cols = Cmat.dims x in
  if Cmat.dims f <> (rows, cols) then invalid_arg "Sylvester.residual: dimension mismatch";
  let acc = ref 0. in
  for jcol = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      let lhs = Cx.sub (Cx.mul (Cmat.get x i jcol) lambda.(jcol))
                  (Cx.mul mu.(i) (Cmat.get x i jcol)) in
      let d = Cx.sub lhs (Cmat.get f i jcol) in
      acc := !acc +. Cx.abs2 d
    done
  done;
  Stdlib.sqrt !acc
