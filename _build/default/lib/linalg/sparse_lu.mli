(** Sparse LU factorization (Gilbert–Peierls, partial pivoting).

    Left-looking column LU: each column is a sparse triangular solve
    whose nonzero pattern comes from a depth-first reachability search,
    so the work is proportional to the fill actually produced — the
    classic approach behind CSparse/KLU-class circuit solvers.  With MNA
    matrices this turns the per-frequency solve from dense O(n^3) into
    nearly O(nnz) and makes thousand-state PDN sweeps cheap. *)

type factor

exception Singular of int
(** Raised with the failing column when no usable pivot exists. *)

(** How to order columns before factorization.  [`Rcm] applies the
    reverse Cuthill–McKee permutation symmetrically first, typically
    reducing fill substantially on mesh-like matrices; [`Natural] (the
    default) keeps the given order. *)
type ordering = [ `Natural | `Rcm ]

(** [factorize ?ordering a] for square [a]. *)
val factorize : ?ordering:ordering -> Sparse.t -> factor

(** [solve f b] solves [A X = B] for dense right-hand sides. *)
val solve : factor -> Cmat.t -> Cmat.t

(** Fill statistics: [nnz L + nnz U]. *)
val fill : factor -> int
