type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let j = { re = 0.; im = 1. }
let make re im = { re; im }
let of_float x = { re = x; im = 0. }
let of_int n = { re = float_of_int n; im = 0. }
let jw w = { re = 0.; im = w }
let re z = z.re
let im z = z.im
let conj = Complex.conj
let neg = Complex.neg
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let inv = Complex.inv
let scale a z = { re = a *. z.re; im = a *. z.im }
let abs = Complex.norm
let abs2 = Complex.norm2
let arg = Complex.arg
let sqrt = Complex.sqrt
let exp = Complex.exp
let polar = Complex.polar

let add_mul acc a b =
  { re = acc.re +. (a.re *. b.re) -. (a.im *. b.im);
    im = acc.im +. (a.re *. b.im) +. (a.im *. b.re) }

let equal ~tol a b = abs (sub a b) <= tol
let is_finite z = Float.is_finite z.re && Float.is_finite z.im

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
end

let pp ppf z =
  if z.im >= 0. then Format.fprintf ppf "%.6g+%.6gj" z.re z.im
  else Format.fprintf ppf "%.6g-%.6gj" z.re (Stdlib.abs_float z.im)

let to_string z = Format.asprintf "%a" pp z
