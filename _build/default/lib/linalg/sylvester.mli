(** Sylvester equations with diagonal coefficients.

    The Loewner matrices of tangential interpolation satisfy
    [X L - M X = F] with [L = diag lambda] and [M = diag mu]
    (paper eq. (13)).  With diagonal coefficients the solution is
    entrywise: [X_ij = F_ij / (lambda_j - mu_i)]. *)

(** [solve_diag ~mu ~lambda f] solves [X diag(lambda) - diag(mu) X = F].
    Raises [Invalid_argument] if some [lambda_j = mu_i] (singular
    equation) or on dimension mismatch. *)
val solve_diag : mu:Cx.t array -> lambda:Cx.t array -> Cmat.t -> Cmat.t

(** [residual ~mu ~lambda x f] is the Frobenius norm of
    [X diag(lambda) - diag(mu) X - F], for verifying eq. (13). *)
val residual : mu:Cx.t array -> lambda:Cx.t array -> Cmat.t -> Cmat.t -> float
