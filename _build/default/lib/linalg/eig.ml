exception No_convergence

let eps = 2.2e-16

(* Parlett–Reinsch balancing with powers of two (exact in floating point):
   scale D a D^{-1} so that row and column norms are comparable. *)
let balance a =
  let n = Cmat.rows a in
  let m = Cmat.copy a in
  let re = Cmat.unsafe_re m and im = Cmat.unsafe_im m in
  let magnitude k = Stdlib.sqrt ((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) in
  let converged = ref false in
  let rounds = ref 0 in
  while not !converged && !rounds < 20 do
    converged := true;
    incr rounds;
    for i = 0 to n - 1 do
      let rnorm = ref 0. and cnorm = ref 0. in
      for jcol = 0 to n - 1 do
        if jcol <> i then begin
          rnorm := !rnorm +. magnitude (i + (jcol * n));
          cnorm := !cnorm +. magnitude (jcol + (i * n))
        end
      done;
      if !rnorm > 0. && !cnorm > 0. then begin
        let f = ref 1. in
        let s = !cnorm +. !rnorm in
        while !cnorm < !rnorm /. 2. do
          f := !f *. 2.;
          cnorm := !cnorm *. 4.
        done;
        while !cnorm >= !rnorm *. 2. do
          f := !f /. 2.;
          cnorm := !cnorm /. 4.
        done;
        if (!cnorm +. !rnorm) /. !f < 0.95 *. s && !f <> 1. then begin
          converged := false;
          let fi = 1. /. !f in
          (* row i *= fi ; column i *= f *)
          for jcol = 0 to n - 1 do
            let k = i + (jcol * n) in
            re.(k) <- re.(k) *. fi;
            im.(k) <- im.(k) *. fi
          done;
          for r = 0 to n - 1 do
            let k = r + (i * n) in
            re.(k) <- re.(k) *. !f;
            im.(k) <- im.(k) *. !f
          done
        end
      end
    done
  done;
  m

(* Householder similarity reduction to upper Hessenberg form. *)
let hessenberg a =
  let n = Cmat.rows a in
  let h = Cmat.copy a in
  let re = Cmat.unsafe_re h and im = Cmat.unsafe_im h in
  for k = 0 to n - 3 do
    let koff = k * n in
    (* Reflector for x = h[k+1:n, k]. *)
    let xnorm2 = ref 0. in
    for i = k + 1 to n - 1 do
      xnorm2 := !xnorm2 +. (re.(koff + i) *. re.(koff + i)) +. (im.(koff + i) *. im.(koff + i))
    done;
    let xnorm = Stdlib.sqrt !xnorm2 in
    if xnorm > 0. then begin
      let ar = re.(koff + k + 1) and ai = im.(koff + k + 1) in
      let amag = Stdlib.sqrt ((ar *. ar) +. (ai *. ai)) in
      let br, bi =
        if amag = 0. then (-.xnorm, 0.)
        else (-.xnorm *. ar /. amag, -.xnorm *. ai /. amag)
      in
      let u0r = ar -. br and u0i = ai -. bi in
      let u0mag2 = (u0r *. u0r) +. (u0i *. u0i) in
      if u0mag2 > 0. then begin
        let unorm2 = 2. *. (!xnorm2 +. (xnorm *. amag)) in
        let tau = 2. *. u0mag2 /. unorm2 in
        (* v = u / u0, v(k+1) = 1; store v in a scratch array. *)
        let vre = Array.make n 0. and vim = Array.make n 0. in
        vre.(k + 1) <- 1.;
        let inv = 1. /. u0mag2 in
        for i = k + 2 to n - 1 do
          let xr = re.(koff + i) and xi = im.(koff + i) in
          vre.(i) <- ((xr *. u0r) +. (xi *. u0i)) *. inv;
          vim.(i) <- ((xi *. u0r) -. (xr *. u0i)) *. inv
        done;
        (* H := P H P with P = I - tau v v*.  Left: rows k+1..n-1. *)
        for jcol = k to n - 1 do
          let joff = jcol * n in
          let sr = ref 0. and si = ref 0. in
          for i = k + 1 to n - 1 do
            let vr = vre.(i) and vi = -.vim.(i) in
            let cr = re.(joff + i) and ci = im.(joff + i) in
            sr := !sr +. (vr *. cr) -. (vi *. ci);
            si := !si +. (vr *. ci) +. (vi *. cr)
          done;
          let sr = tau *. !sr and si = tau *. !si in
          for i = k + 1 to n - 1 do
            let vr = vre.(i) and vi = vim.(i) in
            re.(joff + i) <- re.(joff + i) -. (vr *. sr) +. (vi *. si);
            im.(joff + i) <- im.(joff + i) -. (vr *. si) -. (vi *. sr)
          done
        done;
        (* Right: columns k+1..n-1 of every row. s = H v. *)
        for i = 0 to n - 1 do
          let sr = ref 0. and si = ref 0. in
          for jcol = k + 1 to n - 1 do
            let vr = vre.(jcol) and vi = vim.(jcol) in
            let cr = re.(i + (jcol * n)) and ci = im.(i + (jcol * n)) in
            sr := !sr +. (cr *. vr) -. (ci *. vi);
            si := !si +. (cr *. vi) +. (ci *. vr)
          done;
          let sr = tau *. !sr and si = tau *. !si in
          for jcol = k + 1 to n - 1 do
            (* H[i,j] -= s_i * conj(v_j):
               re -= sr*vr + si*vi ; im -= si*vr - sr*vi *)
            let vr = vre.(jcol) and vi = vim.(jcol) in
            let k' = i + (jcol * n) in
            re.(k') <- re.(k') -. (sr *. vr) -. (si *. vi);
            im.(k') <- im.(k') -. (si *. vr) +. (sr *. vi)
          done
        done;
        (* Explicitly set the annihilated entries. *)
        re.(koff + k + 1) <- br;
        im.(koff + k + 1) <- bi;
        for i = k + 2 to n - 1 do
          re.(koff + i) <- 0.;
          im.(koff + i) <- 0.
        done
      end
    end
  done;
  h

(* Explicit single-shift QR with Wilkinson shifts on the Hessenberg h. *)
let qr_eigenvalues h =
  let n = Cmat.rows h in
  let re = Cmat.unsafe_re h and im = Cmat.unsafe_im h in
  let get i jcol = Cx.make re.(i + (jcol * n)) im.(i + (jcol * n)) in
  let set i jcol (z : Cx.t) =
    re.(i + (jcol * n)) <- z.re;
    im.(i + (jcol * n)) <- z.im
  in
  let mag i jcol =
    let k = i + (jcol * n) in
    Stdlib.sqrt ((re.(k) *. re.(k)) +. (im.(k) *. im.(k)))
  in
  let values = Array.make n Cx.zero in
  let hi = ref (n - 1) in
  let iter_this = ref 0 in
  let total_budget = ref (60 * (n + 1)) in
  while !hi >= 0 do
    if !hi = 0 then begin
      values.(0) <- get 0 0;
      hi := -1
    end
    else begin
      (* Deflate any negligible subdiagonals in [0..hi]. *)
      for i = 0 to !hi - 1 do
        if mag (i + 1) i <= eps *. (mag i i +. mag (i + 1) (i + 1)) then
          set (i + 1) i Cx.zero
      done;
      if mag !hi (!hi - 1) = 0. then begin
        values.(!hi) <- get !hi !hi;
        decr hi;
        iter_this := 0
      end
      else begin
        decr total_budget;
        if !total_budget <= 0 then raise No_convergence;
        incr iter_this;
        (* Active window [lo..hi]. *)
        let lo = ref !hi in
        while !lo > 0 && mag !lo (!lo - 1) <> 0. do
          decr lo
        done;
        let lo = !lo in
        (* Wilkinson shift from the trailing 2x2 block. *)
        let shift =
          if !iter_this mod 12 = 0 then
            (* exceptional shift breaks rare cycling *)
            Cx.of_float (mag !hi (!hi - 1) +. (if !hi >= 2 then mag (!hi - 1) (!hi - 2) else 0.))
          else begin
            let a = get (!hi - 1) (!hi - 1) and b = get (!hi - 1) !hi in
            let c = get !hi (!hi - 1) and d = get !hi !hi in
            let tr2 = Cx.scale 0.5 (Cx.sub a d) in
            let disc = Cx.sqrt (Cx.add (Cx.mul tr2 tr2) (Cx.mul b c)) in
            let l1 = Cx.add d (Cx.add tr2 disc) in
            let l2 = Cx.add d (Cx.sub tr2 disc) in
            (* pick the eigenvalue closer to d *)
            if Cx.abs (Cx.sub l1 d) <= Cx.abs (Cx.sub l2 d) then l1 else l2
          end
        in
        (* Shifted explicit QR step on [lo..hi] via Givens rotations. *)
        for i = lo to !hi do
          set i i (Cx.sub (get i i) shift)
        done;
        let cs = Array.make (!hi - lo) 0. in
        let ss = Array.make (!hi - lo) Cx.zero in
        for k = lo to !hi - 1 do
          let a = get k k and b = get (k + 1) k in
          let r = Stdlib.sqrt (Cx.abs2 a +. Cx.abs2 b) in
          let c, s =
            if r = 0. then (1., Cx.zero)
            else begin
              let amag = Cx.abs a in
              if amag = 0. then (0., Cx.scale (1. /. r) (Cx.conj b))
              else
                ( amag /. r,
                  Cx.scale (1. /. (r *. amag)) (Cx.mul a (Cx.conj b)) )
            end
          in
          cs.(k - lo) <- c;
          ss.(k - lo) <- s;
          (* rows k, k+1 := G * rows  with G = [[c, s], [-conj s, c]] *)
          for jcol = k to !hi do
            let top = get k jcol and bot = get (k + 1) jcol in
            set k jcol (Cx.add (Cx.scale c top) (Cx.mul s bot));
            set (k + 1) jcol (Cx.sub (Cx.scale c bot) (Cx.mul (Cx.conj s) top))
          done
        done;
        for k = lo to !hi - 1 do
          let c = cs.(k - lo) and s = ss.(k - lo) in
          (* columns k, k+1 := columns * G^H with G^H = [[c, -s],[conj s, c]] *)
          let top_row = Stdlib.min (k + 2) !hi in
          for i = lo to top_row do
            let left = get i k and right = get i (k + 1) in
            set i k (Cx.add (Cx.scale c left) (Cx.mul (Cx.conj s) right));
            set i (k + 1) (Cx.sub (Cx.scale c right) (Cx.mul s left))
          done
        done;
        for i = lo to !hi do
          set i i (Cx.add (get i i) shift)
        done
      end
    end
  done;
  values

let eigenvalues a =
  let n, n' = Cmat.dims a in
  if n <> n' then invalid_arg "Eig.eigenvalues: matrix not square";
  if n = 0 then [||]
  else if n = 1 then [| Cmat.get a 0 0 |]
  else qr_eigenvalues (hessenberg (balance a))

let eigenvalues_real r = eigenvalues (Cmat.of_real r)

let sort_by_magnitude vs =
  let copy = Array.copy vs in
  Array.sort (fun a b -> compare (Cx.abs b) (Cx.abs a)) copy;
  copy

let right_vectors a values =
  let n, n' = Cmat.dims a in
  if n <> n' then invalid_arg "Eig.right_vectors: matrix not square";
  let vectors = Cmat.create n (Array.length values) in
  let anorm = Stdlib.max (Cmat.norm_fro a) 1e-300 in
  let rng = Rng.create 987 in
  Array.iteri
    (fun idx lambda ->
      (* shift slightly off the eigenvalue so the solve stays regular *)
      let shift = Cx.add lambda (Cx.of_float (1e-10 *. anorm)) in
      let shifted = Cmat.sub a (Cmat.scale shift (Cmat.identity n)) in
      let factor =
        match Lu.factorize shifted with
        | f -> Some f
        | exception Lu.Singular _ -> None
      in
      let factor =
        match factor with
        | Some f -> f
        | None ->
          (* exactly singular: nudge harder *)
          let shift = Cx.add lambda (Cx.of_float (1e-6 *. anorm)) in
          Lu.factorize (Cmat.sub a (Cmat.scale shift (Cmat.identity n)))
      in
      let v = ref (Cmat.random rng n 1) in
      for _ = 1 to 3 do
        let w = Lu.solve factor !v in
        let nrm = Cmat.vec_norm w in
        if nrm > 0. && Float.is_finite nrm then
          v := Cmat.scale_float (1. /. nrm) w
      done;
      Cmat.set_col vectors idx !v)
    values;
  vectors

let eigen a =
  let values = eigenvalues a in
  (values, right_vectors a values)
