exception Not_stable

(* sign([[A, Q]; [0, -A*]]) = [[-I, 2X]; [0, I]] with X the Lyapunov
   solution.  The Newton iteration Z <- (Z + Z^{-1})/2 preserves the
   block-triangular structure, so it reduces to coupled n x n updates
     F <- (cF + F^{-1}/c)/2,   G <- (cG + F^{-1} G F^{-*}/c)/2
   with the usual norm scaling c; F -> -I and G -> 2X quadratically for
   stable A. *)

let max_iterations = 100
let tolerance = 1e-13

let solve ~a ~q =
  let n, n' = Cmat.dims a in
  let m, m' = Cmat.dims q in
  if n <> n' || m <> m' || n <> m then
    invalid_arg "Lyapunov.solve: A and Q must be square of equal size";
  if n = 0 then Cmat.create 0 0
  else begin
    let f = ref (Cmat.copy a) in
    let g = ref (Cmat.copy q) in
    let rec iterate k =
      if k > max_iterations then raise Not_stable;
      let finv =
        match Lu.factorize !f with
        | exception Lu.Singular _ -> raise Not_stable
        | fact -> Lu.solve fact (Cmat.identity n)
      in
      let nf = Cmat.norm_fro !f and nfi = Cmat.norm_fro finv in
      if not (Float.is_finite nf && Float.is_finite nfi) || nf = 0. then
        raise Not_stable;
      let c = sqrt (nfi /. nf) in
      let f' =
        Cmat.scale_float 0.5
          (Cmat.add (Cmat.scale_float c !f) (Cmat.scale_float (1. /. c) finv))
      in
      (* F^{-1} G F^{-*} *)
      let middle = Cmat.mul finv (Cmat.mul !g (Cmat.ctranspose finv)) in
      let g' =
        Cmat.scale_float 0.5
          (Cmat.add (Cmat.scale_float c !g) (Cmat.scale_float (1. /. c) middle))
      in
      let delta =
        Cmat.norm_fro (Cmat.sub f' !f) /. Stdlib.max (Cmat.norm_fro f') 1e-300
      in
      f := f';
      g := g';
      if delta > tolerance then iterate (k + 1)
    in
    iterate 1;
    (* F must have converged to -I *)
    let id_err =
      Cmat.norm_fro (Cmat.add !f (Cmat.identity n)) /. sqrt (float_of_int n)
    in
    if id_err > 1e-6 then raise Not_stable;
    Cmat.scale_float 0.5 !g
  end

let residual ~a ~q x =
  Cmat.norm_fro
    (Cmat.add (Cmat.add (Cmat.mul a x) (Cmat.mul x (Cmat.ctranspose a))) q)
