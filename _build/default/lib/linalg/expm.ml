(* Scaling and squaring with Padé(6,6).

   e^A ~ q(A)^{-1} p(A) with p the numerator of the diagonal Padé
   approximant; accurate once |A|/2^s is below ~0.5.  The approximant
   coefficients c_k satisfy c_0 = 1, c_{k+1} = c_k (d - k)/((2d - k)(k+1))
   for degree d. *)

let pade_degree = 6

let coefficients =
  let c = Array.make (pade_degree + 1) 1. in
  for k = 0 to pade_degree - 1 do
    let fk = float_of_int k and fd = float_of_int pade_degree in
    c.(k + 1) <- c.(k) *. ((fd -. fk) /. ((((2. *. fd) -. fk)) *. (fk +. 1.)))
  done;
  c

let expm a =
  let n, n' = Cmat.dims a in
  if n <> n' then invalid_arg "Expm.expm: matrix not square";
  if n = 0 then Cmat.create 0 0
  else begin
    let norm = Cmat.norm_one a in
    (* scale so |A / 2^s| <= 0.5 *)
    let s =
      if norm <= 0.5 then 0
      else Stdlib.max 0 (int_of_float (Float.ceil (Float.log2 (norm /. 0.5))))
    in
    let scaled = Cmat.scale_float (1. /. (2. ** float_of_int s)) a in
    (* p = sum c_k A^k split into even (q even part) and odd powers so
       that q(A) = even - odd, p(A) = even + odd *)
    let even = ref (Cmat.identity n) in
    let odd = ref (Cmat.scale_float coefficients.(1) scaled) in
    let power = ref (Cmat.copy scaled) in
    for k = 2 to pade_degree do
      power := Cmat.mul !power scaled;
      let term = Cmat.scale_float coefficients.(k) !power in
      if k land 1 = 0 then even := Cmat.add !even term
      else odd := Cmat.add !odd term
    done;
    let p = Cmat.add !even !odd in
    let q = Cmat.sub !even !odd in
    let r =
      match Lu.factorize q with
      | exception Lu.Singular _ ->
        invalid_arg "Expm.expm: Pade denominator singular (pathological matrix)"
      | f -> Lu.solve f p
    in
    (* undo the scaling by repeated squaring *)
    let result = ref r in
    for _ = 1 to s do
      result := Cmat.mul !result !result
    done;
    !result
  end

let expm_scaled a t = expm (Cmat.scale_float t a)
