(** Dense complex eigenvalues.

    Parlett–Reinsch balancing, Householder reduction to upper Hessenberg
    form, then explicit single-shift QR iteration with Wilkinson shifts
    and deflation.  Only eigenvalues are produced — that is all the
    vector-fitting pole relocation and model stability analysis need. *)

exception No_convergence
(** Raised when the QR iteration fails to deflate within the iteration
    budget (essentially never happens on balanced matrices). *)

(** Eigenvalues of a square complex matrix, in no particular order. *)
val eigenvalues : Cmat.t -> Cx.t array

(** Eigenvalues of a real matrix (conjugate-paired up to roundoff). *)
val eigenvalues_real : Rmat.t -> Cx.t array

(** [sort_by_magnitude vs] returns a copy sorted by decreasing modulus. *)
val sort_by_magnitude : Cx.t array -> Cx.t array

(** [right_vectors a values] computes (approximate) right eigenvectors
    for the given eigenvalues by shifted inverse iteration: column [i]
    satisfies [A v_i ~ values.(i) v_i], normalized to unit length.
    Robust for simple, reasonably separated eigenvalues; for (nearly)
    defective clusters the returned vectors may be nearly parallel —
    check the residual if that matters. *)
val right_vectors : Cmat.t -> Cx.t array -> Cmat.t

(** [eigen a] is [eigenvalues a] paired with {!right_vectors}. *)
val eigen : Cmat.t -> Cx.t array * Cmat.t
