type builder = {
  brows : int;
  bcols : int;
  mutable entries : (int * int * float * float) list;
  mutable count : int;
}

type t = {
  rows : int;
  cols : int;
  colptr : int array;
  rowind : int array;
  re : float array;
  im : float array;
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.create: negative dimension";
  { brows = rows; bcols = cols; entries = []; count = 0 }

let add b i jcol (z : Cx.t) =
  if i < 0 || i >= b.brows || jcol < 0 || jcol >= b.bcols then
    invalid_arg "Sparse.add: index out of range";
  if z.Cx.re <> 0. || z.Cx.im <> 0. then begin
    b.entries <- (i, jcol, z.Cx.re, z.Cx.im) :: b.entries;
    b.count <- b.count + 1
  end

let compress b =
  (* bucket by column, then sort and merge duplicates within each column *)
  let per_col = Array.make b.bcols [] in
  List.iter
    (fun (i, jcol, re, im) -> per_col.(jcol) <- (i, re, im) :: per_col.(jcol))
    b.entries;
  let colptr = Array.make (b.bcols + 1) 0 in
  let merged = Array.make b.bcols [||] in
  for jcol = 0 to b.bcols - 1 do
    let sorted =
      List.sort (fun (i1, _, _) (i2, _, _) -> compare i1 i2) per_col.(jcol)
    in
    (* merge equal row indices *)
    let out = ref [] in
    List.iter
      (fun (i, re, im) ->
        match !out with
        | (i0, re0, im0) :: rest when i0 = i ->
          out := (i0, re0 +. re, im0 +. im) :: rest
        | _ -> out := (i, re, im) :: !out)
      sorted;
    let arr =
      Array.of_list
        (List.rev_map (fun e -> e) !out
         |> List.filter (fun (_, re, im) -> re <> 0. || im <> 0.))
    in
    merged.(jcol) <- arr;
    colptr.(jcol + 1) <- colptr.(jcol) + Array.length arr
  done;
  let nnz = colptr.(b.bcols) in
  let rowind = Array.make nnz 0 in
  let re = Array.make nnz 0. and im = Array.make nnz 0. in
  for jcol = 0 to b.bcols - 1 do
    Array.iteri
      (fun k (i, vre, vim) ->
        let p = colptr.(jcol) + k in
        rowind.(p) <- i;
        re.(p) <- vre;
        im.(p) <- vim)
      merged.(jcol)
  done;
  { rows = b.brows; cols = b.bcols; colptr; rowind; re; im }

let nnz t = t.colptr.(t.cols)
let dims t = (t.rows, t.cols)

let scale_add ~alpha a ~beta b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Sparse.scale_add: dimension mismatch";
  let out = create ~rows:a.rows ~cols:a.cols in
  let scatter (m : t) (z : Cx.t) =
    for jcol = 0 to m.cols - 1 do
      for p = m.colptr.(jcol) to m.colptr.(jcol + 1) - 1 do
        add out m.rowind.(p) jcol (Cx.mul z (Cx.make m.re.(p) m.im.(p)))
      done
    done
  in
  scatter a alpha;
  scatter b beta;
  compress out

let mul_vec t x =
  if Cmat.rows x <> t.cols || Cmat.cols x <> 1 then
    invalid_arg "Sparse.mul_vec: expected a column vector of matching size";
  let y = Cmat.zeros t.rows 1 in
  let yr = Cmat.unsafe_re y and yi = Cmat.unsafe_im y in
  let xr = Cmat.unsafe_re x and xi = Cmat.unsafe_im x in
  for jcol = 0 to t.cols - 1 do
    let vr = xr.(jcol) and vi = xi.(jcol) in
    if vr <> 0. || vi <> 0. then
      for p = t.colptr.(jcol) to t.colptr.(jcol + 1) - 1 do
        let i = t.rowind.(p) in
        let ar = t.re.(p) and ai = t.im.(p) in
        yr.(i) <- yr.(i) +. (ar *. vr) -. (ai *. vi);
        yi.(i) <- yi.(i) +. (ar *. vi) +. (ai *. vr)
      done
  done;
  y

let to_dense t =
  let m = Cmat.zeros t.rows t.cols in
  for jcol = 0 to t.cols - 1 do
    for p = t.colptr.(jcol) to t.colptr.(jcol + 1) - 1 do
      Cmat.set m t.rowind.(p) jcol (Cx.make t.re.(p) t.im.(p))
    done
  done;
  m

let rcm_ordering t =
  let n, n' = (t.rows, t.cols) in
  if n <> n' then invalid_arg "Sparse.rcm_ordering: matrix not square";
  (* adjacency of A + A^T as sorted neighbor lists *)
  let neighbors = Array.make n [] in
  for jcol = 0 to n - 1 do
    for p = t.colptr.(jcol) to t.colptr.(jcol + 1) - 1 do
      let i = t.rowind.(p) in
      if i <> jcol then begin
        neighbors.(i) <- jcol :: neighbors.(i);
        neighbors.(jcol) <- i :: neighbors.(jcol)
      end
    done
  done;
  let neighbors = Array.map (List.sort_uniq compare) neighbors in
  let degree = Array.map List.length neighbors in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let pos = ref 0 in
  let queue = Queue.create () in
  (* process every connected component, starting from a minimum-degree
     node (a cheap stand-in for a pseudo-peripheral vertex) *)
  let next_start () =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if (not visited.(i))
         && (!best < 0 || degree.(i) < degree.(!best)) then best := i
    done;
    if !best < 0 then None else Some !best
  in
  let rec component () =
    match next_start () with
    | None -> ()
    | Some start ->
      visited.(start) <- true;
      Queue.push start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        order.(!pos) <- v;
        incr pos;
        let fresh =
          List.filter (fun u -> not visited.(u)) neighbors.(v)
          |> List.sort (fun a b -> compare degree.(a) degree.(b))
        in
        List.iter
          (fun u ->
            visited.(u) <- true;
            Queue.push u queue)
          fresh
      done;
      component ()
  in
  component ();
  (* reverse for RCM *)
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    out.(i) <- order.(n - 1 - i)
  done;
  out

let permute t ~perm =
  let n, n' = (t.rows, t.cols) in
  if n <> n' then invalid_arg "Sparse.permute: matrix not square";
  if Array.length perm <> n then invalid_arg "Sparse.permute: bad permutation length";
  let inv = Array.make n (-1) in
  Array.iteri
    (fun newpos old ->
      if old < 0 || old >= n || inv.(old) >= 0 then
        invalid_arg "Sparse.permute: not a permutation";
      inv.(old) <- newpos)
    perm;
  let b = create ~rows:n ~cols:n in
  for jcol = 0 to n - 1 do
    for p = t.colptr.(jcol) to t.colptr.(jcol + 1) - 1 do
      add b inv.(t.rowind.(p)) inv.(jcol) (Cx.make t.re.(p) t.im.(p))
    done
  done;
  compress b

let of_dense ?(drop_tol = 0.) d =
  let rows, cols = Cmat.dims d in
  let b = create ~rows ~cols in
  for jcol = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      let z = Cmat.get d i jcol in
      if Cx.abs z > drop_tol then add b i jcol z
    done
  done;
  compress b
