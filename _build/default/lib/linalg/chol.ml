exception Not_positive_definite of int

let factorize a =
  let n, n' = Cmat.dims a in
  if n <> n' then invalid_arg "Chol.factorize: matrix not square";
  let l = Cmat.zeros n n in
  for jcol = 0 to n - 1 do
    (* diagonal entry *)
    let acc = ref (Cx.re (Cmat.get a jcol jcol)) in
    for k = 0 to jcol - 1 do
      acc := !acc -. Cx.abs2 (Cmat.get l jcol k)
    done;
    if !acc <= 0. || not (Float.is_finite !acc) then
      raise (Not_positive_definite jcol);
    let d = sqrt !acc in
    Cmat.set l jcol jcol (Cx.of_float d);
    for i = jcol + 1 to n - 1 do
      let s = ref (Cmat.get a i jcol) in
      for k = 0 to jcol - 1 do
        s := Cx.sub !s (Cx.mul (Cmat.get l i k) (Cx.conj (Cmat.get l jcol k)))
      done;
      Cmat.set l i jcol (Cx.scale (1. /. d) !s)
    done
  done;
  l

let solve l b =
  let n = Cmat.rows l in
  if Cmat.rows b <> n then invalid_arg "Chol.solve: dimension mismatch";
  let x = Cmat.copy b in
  let nrhs = Cmat.cols b in
  for jcol = 0 to nrhs - 1 do
    (* forward: L y = b *)
    for i = 0 to n - 1 do
      let s = ref (Cmat.get x i jcol) in
      for k = 0 to i - 1 do
        s := Cx.sub !s (Cx.mul (Cmat.get l i k) (Cmat.get x k jcol))
      done;
      Cmat.set x i jcol (Cx.div !s (Cmat.get l i i))
    done;
    (* backward: L* x = y *)
    for i = n - 1 downto 0 do
      let s = ref (Cmat.get x i jcol) in
      for k = i + 1 to n - 1 do
        s := Cx.sub !s (Cx.mul (Cx.conj (Cmat.get l k i)) (Cmat.get x k jcol))
      done;
      Cmat.set x i jcol (Cx.div !s (Cmat.get l i i))
    done
  done;
  x

let is_positive_definite a =
  match factorize a with
  | _ -> true
  | exception Not_positive_definite _ -> false
  | exception Invalid_argument _ -> false
