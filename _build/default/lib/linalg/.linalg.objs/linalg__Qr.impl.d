lib/linalg/qr.ml: Array Cmat Cx Stdlib
