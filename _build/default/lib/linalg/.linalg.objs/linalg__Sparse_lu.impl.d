lib/linalg/sparse_lu.ml: Array Cmat Sparse Stdlib
