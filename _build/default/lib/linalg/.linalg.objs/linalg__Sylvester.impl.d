lib/linalg/sylvester.ml: Array Cmat Cx Stdlib
