lib/linalg/sparse.mli: Cmat Cx
