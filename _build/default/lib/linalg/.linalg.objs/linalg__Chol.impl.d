lib/linalg/chol.ml: Cmat Cx Float
