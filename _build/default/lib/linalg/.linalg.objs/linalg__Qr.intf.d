lib/linalg/qr.mli: Cmat
