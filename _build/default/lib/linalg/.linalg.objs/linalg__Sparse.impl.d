lib/linalg/sparse.ml: Array Cmat Cx List Queue
