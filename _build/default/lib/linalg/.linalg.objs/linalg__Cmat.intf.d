lib/linalg/cmat.mli: Cx Format Rmat Rng
