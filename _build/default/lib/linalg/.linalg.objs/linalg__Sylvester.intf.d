lib/linalg/sylvester.mli: Cmat Cx
