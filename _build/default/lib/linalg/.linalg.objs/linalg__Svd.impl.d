lib/linalg/svd.ml: Array Cmat Cx Float List Stdlib
