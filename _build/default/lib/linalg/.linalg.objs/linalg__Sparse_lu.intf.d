lib/linalg/sparse_lu.mli: Cmat Sparse
