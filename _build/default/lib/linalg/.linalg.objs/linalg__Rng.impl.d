lib/linalg/rng.ml: Array Cx Float Int64 Stdlib
