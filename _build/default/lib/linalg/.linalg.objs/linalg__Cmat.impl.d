lib/linalg/cmat.ml: Array Cx Format List Printf Rmat Rng Stdlib
