lib/linalg/lu.mli: Cmat Cx
