lib/linalg/lu.ml: Array Cmat Cx
