lib/linalg/lyapunov.mli: Cmat
