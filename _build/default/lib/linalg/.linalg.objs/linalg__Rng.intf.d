lib/linalg/rng.mli: Cx
