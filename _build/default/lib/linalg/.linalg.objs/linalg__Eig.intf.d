lib/linalg/eig.mli: Cmat Cx Rmat
