lib/linalg/chol.mli: Cmat
