lib/linalg/rmat.ml: Array Format List Printf Rng Stdlib
