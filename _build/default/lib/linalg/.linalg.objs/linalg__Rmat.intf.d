lib/linalg/rmat.mli: Format Rng
