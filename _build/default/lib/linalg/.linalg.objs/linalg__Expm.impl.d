lib/linalg/expm.ml: Array Cmat Float Lu Stdlib
