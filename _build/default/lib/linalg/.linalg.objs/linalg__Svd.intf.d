lib/linalg/svd.mli: Cmat
