lib/linalg/lyapunov.ml: Cmat Float Lu Stdlib
