type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let bits t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits t in
  { state = Int64.mul seed 0x2545F4914F6CDD1DL }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits t) 1) (Int64.of_int n))

let uniform t =
  (* 53 high-quality bits into the mantissa. *)
  let x = Int64.shift_right_logical (bits t) 11 in
  Int64.to_float x *. 0x1p-53

let range t lo hi = lo +. ((hi -. lo) *. uniform t)

let gaussian t =
  let rec draw () =
    let u = uniform t in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = uniform t in
  Stdlib.sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let complex_gaussian t =
  let re = gaussian t in
  let im = gaussian t in
  Cx.make re im

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let k = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(k);
    a.(k) <- tmp
  done
