(** Complex scalars.

    A thin layer over {!Stdlib.Complex} that adds the helpers the rest of
    the library needs: mixed real/complex arithmetic, comparisons with
    tolerances, and printers.  The type is [Stdlib.Complex.t], so values
    interoperate directly with the standard library. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t

(** The imaginary unit [j] (EE convention). *)
val j : t

val make : float -> float -> t

(** [of_float x] is the complex number [x + 0j]. *)
val of_float : float -> t

(** [of_int n] is the complex number [n + 0j]. *)
val of_int : int -> t

(** [jw w] is [0 + wj]: a point on the imaginary axis.  Macromodeling
    evaluates transfer functions at [jw (2 *. pi *. f)]. *)
val jw : float -> t

val re : t -> float
val im : t -> float
val conj : t -> t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t

(** [scale a z] multiplies [z] by the real scalar [a]. *)
val scale : float -> t -> t

(** Modulus [|z|], computed without undue overflow. *)
val abs : t -> float

(** Squared modulus [|z|^2]. *)
val abs2 : t -> float

val arg : t -> float
val sqrt : t -> t
val exp : t -> t
val polar : float -> float -> t

(** [add_mul acc a b] is [acc + a*b]; the inner-product workhorse. *)
val add_mul : t -> t -> t -> t

(** [equal ~tol a b] holds when [|a - b| <= tol]. *)
val equal : tol:float -> t -> t -> bool

val is_finite : t -> bool

(** Infix operators, intended for local [open Cx.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
end

val pp : Format.formatter -> t -> unit
val to_string : t -> string
