(** Fit-quality metrics — the error measures of the paper's Section 5.

    [err_i = |H(j 2 pi f_i) - S(f_i)|_2 / |S(f_i)|_2] (spectral norms)
    and [ERR = |err|_2 / sqrt k]. *)

(** Per-sample relative errors [err_i]. *)
val err_vector :
  Statespace.Descriptor.t -> Statespace.Sampling.sample array -> float array

(** The aggregate [ERR]. *)
val err : Statespace.Descriptor.t -> Statespace.Sampling.sample array -> float

(** Worst per-sample relative error. *)
val max_err : Statespace.Descriptor.t -> Statespace.Sampling.sample array -> float

(** A one-line textual fit report. *)
val report :
  name:string -> Statespace.Descriptor.t -> Statespace.Sampling.sample array -> string
