lib/core/metrics.mli: Statespace
