lib/core/realify.mli: Linalg Loewner
