lib/core/algorithm1.mli: Direction Loewner Statespace Svd_reduce Tangential
