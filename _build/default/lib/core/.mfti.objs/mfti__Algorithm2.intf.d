lib/core/algorithm2.mli: Direction Statespace Svd_reduce Tangential
