lib/core/svd_reduce.mli: Linalg Loewner Statespace
