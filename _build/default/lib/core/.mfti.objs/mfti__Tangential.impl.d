lib/core/tangential.ml: Array Cmat Cx Descriptor Direction Float Hashtbl Linalg List Printf Sampling Statespace Stdlib
