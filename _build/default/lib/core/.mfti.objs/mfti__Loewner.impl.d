lib/core/loewner.ml: Array Cmat Cx Linalg Sylvester Tangential
