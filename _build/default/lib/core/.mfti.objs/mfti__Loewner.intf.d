lib/core/loewner.mli: Linalg Tangential
