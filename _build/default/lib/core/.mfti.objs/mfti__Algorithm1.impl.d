lib/core/algorithm1.ml: Direction Loewner Realify Statespace Svd_reduce Tangential
