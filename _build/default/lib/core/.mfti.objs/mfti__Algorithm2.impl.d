lib/core/algorithm2.ml: Array Cmat Cx Direction Float Linalg List Loewner Realify Statespace Stdlib Svd_reduce Tangential
