lib/core/realify.ml: Array Cmat Cx Linalg List Loewner Stdlib
