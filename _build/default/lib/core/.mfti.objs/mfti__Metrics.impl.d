lib/core/metrics.ml: Array Cmat Descriptor Linalg Printf Sampling Statespace Stdlib Svd
