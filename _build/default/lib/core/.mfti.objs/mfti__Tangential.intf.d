lib/core/tangential.mli: Direction Linalg Statespace
