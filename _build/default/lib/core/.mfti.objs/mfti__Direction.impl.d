lib/core/direction.ml: Cmat Cx Linalg Printf Qr Rng
