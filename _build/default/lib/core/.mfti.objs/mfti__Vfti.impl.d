lib/core/vfti.ml: Algorithm1 Direction Svd_reduce Tangential
