lib/core/vfti.mli: Algorithm1 Direction Statespace Svd_reduce
