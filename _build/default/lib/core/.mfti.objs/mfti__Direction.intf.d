lib/core/direction.mli: Linalg
