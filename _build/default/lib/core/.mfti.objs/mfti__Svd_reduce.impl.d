lib/core/svd_reduce.ml: Array Cmat Cx Float Linalg Loewner Statespace Stdlib Svd
