(** Interpolation-direction generators.

    The tangential directions [R_i] (m x t) and [L_i] (t x p) of the
    paper's eqs. (6)-(7) are "arbitrarily chosen"; their conditioning
    still matters.  All generators produce *real* matrices so that the
    conjugate-sample closure can reuse them unchanged and Lemma 3.2's
    realification applies.  Algorithm 1 step 1 asks for orthonormal
    directions — that is {!Orthonormal}. *)

type kind =
  | Identity_cycle
      (** columns of the identity, cycling through ports from block to
          block; deterministic, probes every port across samples *)
  | Orthonormal of int
      (** seeded random matrices with orthonormalized columns (the
          paper's recommended choice) *)
  | Random_unit of int
      (** seeded random unit-norm columns, not mutually orthogonal —
          the weakest choice, kept for ablation *)

(** [right kind ~block ~ports ~size] is the [ports x size] direction
    [R_i] for right-data block number [block].  [size <= ports]
    required for [Orthonormal] (columns cannot be orthonormal
    otherwise). *)
val right : kind -> block:int -> ports:int -> size:int -> Linalg.Cmat.t

(** [left kind ~block ~ports ~size] is the [size x ports] direction
    [L_i]. *)
val left : kind -> block:int -> ports:int -> size:int -> Linalg.Cmat.t
