open Linalg

type kind =
  | Identity_cycle
  | Orthonormal of int
  | Random_unit of int

let check ~ports ~size name =
  if ports < 1 then invalid_arg (name ^ ": ports must be >= 1");
  if size < 1 || size > ports then
    invalid_arg
      (Printf.sprintf "%s: direction size %d must be in [1, %d]" name size ports)

(* Distinct, reproducible stream per (seed, block, side). *)
let block_rng seed block side =
  Rng.create ((seed * 1_000_003) + (block * 2) + side)

let tall kind ~block ~ports ~size ~side =
  check ~ports ~size "Mfti.Direction";
  match kind with
  | Identity_cycle ->
    Cmat.init ports size (fun i jcol ->
        if i = ((block * size) + jcol) mod ports then Cx.one else Cx.zero)
  | Orthonormal seed ->
    let rng = block_rng seed block side in
    Qr.orthonormalize (Cmat.random_real rng ports size)
  | Random_unit seed ->
    let rng = block_rng seed block side in
    let m = Cmat.random_real rng ports size in
    let q = Cmat.copy m in
    for jcol = 0 to size - 1 do
      let c = Cmat.col q jcol in
      let nrm = Cmat.vec_norm c in
      if nrm > 0. then Cmat.set_col q jcol (Cmat.scale_float (1. /. nrm) c)
    done;
    q

let right kind ~block ~ports ~size = tall kind ~block ~ports ~size ~side:0
let left kind ~block ~ports ~size =
  Cmat.transpose (tall kind ~block ~ports ~size ~side:1)
