(** Recursive MFTI of noisy data — paper Algorithm 2.

    Instead of using every tangential column/row at once (whose cost
    grows quickly with the pencil size), the recursion starts from a
    small strided subset, builds a model, measures the tangential
    residual on the *held-out* data, and moves the [batch] worst-fitting
    units into the active set — repeating until the mean held-out
    residual falls below [threshold] or the data is exhausted.  The full
    Loewner pencil is assembled once and submatrices are selected per
    iteration (the paper's "update instead of recompute" step).

    A selection unit is one tangential column together with its
    conjugate partner (plus the aligned row pair), so realification
    stays applicable to every intermediate model.  Residuals are
    normalized by the data norms, making [threshold] scale-free. *)

type options = {
  weight : Tangential.weight;
  directions : Direction.kind;
  batch : int;             (** k0: units moved per iteration (>= 1) *)
  threshold : float;       (** Th: mean relative held-out residual target *)
  max_iterations : int;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
}

val default_options : options

type result = {
  model : Statespace.Descriptor.t;
  rank : int;
  sigma : float array;
  selected_units : int;    (** units in the final active set *)
  total_units : int;
  iterations : int;
  history : float array;   (** mean held-out relative residual per iteration
                               ([nan] for the final one when nothing is
                               held out) *)
}

(** [fit ?options samples] runs the recursion.  Same sample requirements
    as {!Algorithm1.fit}; additionally the left and right tangential
    widths must match (they always do with [Full], [Uniform] or a
    pairwise-equal [Per_sample] weighting). *)
val fit : ?options:options -> Statespace.Sampling.sample array -> result
