open Linalg

type t = {
  ll : Cmat.t;
  sll : Cmat.t;
  w : Cmat.t;
  v : Cmat.t;
  r : Cmat.t;
  l : Cmat.t;
  lambda : Cx.t array;
  mu : Cx.t array;
  right_sizes : int array;
  left_sizes : int array;
}

let build (data : Tangential.t) =
  let right = data.Tangential.right and left = data.Tangential.left in
  let right_sizes = Tangential.right_sizes data in
  let left_sizes = Tangential.left_sizes data in
  let kr = Array.fold_left ( + ) 0 right_sizes in
  let kl = Array.fold_left ( + ) 0 left_sizes in
  let m = data.Tangential.inputs and p = data.Tangential.outputs in
  let col_off = Array.make (Array.length right_sizes) 0 in
  for i = 1 to Array.length right_sizes - 1 do
    col_off.(i) <- col_off.(i - 1) + right_sizes.(i - 1)
  done;
  let row_off = Array.make (Array.length left_sizes) 0 in
  for i = 1 to Array.length left_sizes - 1 do
    row_off.(i) <- row_off.(i - 1) + left_sizes.(i - 1)
  done;
  let ll = Cmat.zeros kl kr and sll = Cmat.zeros kl kr in
  let w = Cmat.zeros p kr and r = Cmat.zeros m kr in
  let v = Cmat.zeros kl m and l = Cmat.zeros kl p in
  let lambda = Array.make kr Cx.zero and mu = Array.make kl Cx.zero in
  Array.iteri
    (fun j (rb : Tangential.right_block) ->
      let off = col_off.(j) in
      Cmat.set_sub w ~r:0 ~c:off rb.Tangential.w;
      Cmat.set_sub r ~r:0 ~c:off rb.Tangential.r;
      for c = 0 to right_sizes.(j) - 1 do
        lambda.(off + c) <- rb.Tangential.lambda
      done)
    right;
  Array.iteri
    (fun i (lb : Tangential.left_block) ->
      let off = row_off.(i) in
      Cmat.set_sub v ~r:off ~c:0 lb.Tangential.v;
      Cmat.set_sub l ~r:off ~c:0 lb.Tangential.l;
      for c = 0 to left_sizes.(i) - 1 do
        mu.(off + c) <- lb.Tangential.mu
      done)
    left;
  Array.iteri
    (fun i (lb : Tangential.left_block) ->
      Array.iteri
        (fun j (rb : Tangential.right_block) ->
          let denom = Cx.sub lb.Tangential.mu rb.Tangential.lambda in
          if Cx.abs denom = 0. then
            invalid_arg "Loewner.build: coincident left and right points";
          let inv = Cx.inv denom in
          let vr = Cmat.mul lb.Tangential.v rb.Tangential.r in
          let lw = Cmat.mul lb.Tangential.l rb.Tangential.w in
          let blk = Cmat.scale inv (Cmat.sub vr lw) in
          let sblk =
            Cmat.scale inv
              (Cmat.sub
                 (Cmat.scale lb.Tangential.mu vr)
                 (Cmat.scale rb.Tangential.lambda lw))
          in
          Cmat.set_sub ll ~r:row_off.(i) ~c:col_off.(j) blk;
          Cmat.set_sub sll ~r:row_off.(i) ~c:col_off.(j) sblk)
        right)
    left;
  { ll; sll; w; v; r; l; lambda; mu; right_sizes; left_sizes }

let sylvester_residuals t =
  let lw = Cmat.mul t.l t.w in
  let vr = Cmat.mul t.v t.r in
  let scale_cols m diag = Cmat.mapi (fun _ jcol x -> Cx.mul x diag.(jcol)) m in
  let scale_rows m diag = Cmat.mapi (fun i _ x -> Cx.mul diag.(i) x) m in
  let res1 =
    Cmat.sub
      (Cmat.sub (scale_cols t.ll t.lambda) (scale_rows t.ll t.mu))
      (Cmat.sub lw vr)
  in
  let res2 =
    Cmat.sub
      (Cmat.sub (scale_cols t.sll t.lambda) (scale_rows t.sll t.mu))
      (Cmat.sub (scale_cols lw t.lambda) (scale_rows vr t.mu))
  in
  (Cmat.norm_fro res1, Cmat.norm_fro res2)

let ll_via_sylvester t =
  let f = Cmat.sub (Cmat.mul t.l t.w) (Cmat.mul t.v t.r) in
  Sylvester.solve_diag ~mu:t.mu ~lambda:t.lambda f
