(** Realification of the Loewner pencil — paper Lemma 3.2.

    With conjugate sample pairs adjacent and real directions, the block
    transform [T = blkdiag(T_1, T_3, ...)],
    [T_i = (1/sqrt 2) [[I, -jI], [I, jI]]], makes
    [T_l^* LL T_r], [T_l^* sLL T_r], [T_l^* V] and [W T_r] real, so the
    final model has real state-space matrices. *)

(** [transform_matrix sizes] builds the [K x K] unitary [T] for blocks
    whose widths are [sizes] (which must come in equal adjacent pairs:
    [t; t; t'; t'; ...]). *)
val transform_matrix : int array -> Linalg.Cmat.t

(** [apply loewner] returns the transformed pencil.  The [lambda]/[mu]
    arrays are preserved untouched (they no longer diagonalize the
    Sylvester identities after the similarity — only the matrices
    change).  Raises [Invalid_argument] if the block structure is not
    conjugate-paired. *)
val apply : Loewner.t -> Loewner.t

(** Largest imaginary entry across the transformed matrices relative to
    their norms — should be at roundoff level; exposed for tests. *)
val imaginary_residue : Loewner.t -> float
