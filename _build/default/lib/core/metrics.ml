open Linalg
open Statespace

let err_vector model samples =
  Array.map
    (fun smp ->
      let h = Descriptor.eval_freq model smp.Sampling.freq in
      let denom = Svd.norm2 smp.Sampling.s in
      let num = Svd.norm2 (Cmat.sub h smp.Sampling.s) in
      if denom = 0. then num else num /. denom)
    samples

let err model samples =
  let e = err_vector model samples in
  let k = Array.length e in
  if k = 0 then 0.
  else begin
    let sum2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. e in
    sqrt sum2 /. sqrt (float_of_int k)
  end

let max_err model samples =
  Array.fold_left Stdlib.max 0. (err_vector model samples)

let report ~name model samples =
  Printf.sprintf "%s: order %d, ERR %.3e, max err %.3e over %d samples"
    name (Descriptor.order model) (err model samples) (max_err model samples)
    (Array.length samples)
