open Linalg

let check_paired sizes =
  let n = Array.length sizes in
  if n land 1 = 1 then
    invalid_arg "Realify: blocks must come in conjugate pairs";
  for i = 0 to (n / 2) - 1 do
    if sizes.(2 * i) <> sizes.((2 * i) + 1) then
      invalid_arg "Realify: conjugate partners must have equal width"
  done

let transform_matrix sizes =
  check_paired sizes;
  let pair_block t =
    let s = 1. /. sqrt 2. in
    Cmat.init (2 * t) (2 * t) (fun i jcol ->
        (* [[ I, -jI ], [ I, jI ]] / sqrt 2 *)
        if jcol < t then
          if i = jcol || i = jcol + t then Cx.of_float s else Cx.zero
        else if i = jcol - t then Cx.make 0. (-.s)
        else if i = jcol then Cx.make 0. s
        else Cx.zero)
  in
  let blocks = ref [] in
  let i = ref 0 in
  while !i < Array.length sizes do
    blocks := pair_block sizes.(!i) :: !blocks;
    i := !i + 2
  done;
  Cmat.blkdiag (List.rev !blocks)

(* The transform only mixes each block with its conjugate partner, so it
   is applied pairwise in O(K^2) instead of forming the dense K x K
   matrix product:
     M T   : col_a' = (col_a + col_b)/sqrt2, col_b' = j (col_b - col_a)/sqrt2
     T^* M : row_a' = (row_a + row_b)/sqrt2, row_b' = j (row_a - row_b)/sqrt2 *)

let pair_offsets sizes =
  check_paired sizes;
  let out = ref [] in
  let off = ref 0 in
  let i = ref 0 in
  while !i < Array.length sizes do
    let t = sizes.(!i) in
    for c = 0 to t - 1 do
      out := (!off + c, !off + t + c) :: !out
    done;
    off := !off + (2 * t);
    i := !i + 2
  done;
  List.rev !out

let apply_cols sizes m =
  let out = Cmat.copy m in
  let rows = Cmat.rows out in
  let re = Cmat.unsafe_re out and im = Cmat.unsafe_im out in
  let s = 1. /. sqrt 2. in
  List.iter
    (fun (a, b) ->
      let aoff = a * rows and boff = b * rows in
      for i = 0 to rows - 1 do
        let ar = re.(aoff + i) and ai = im.(aoff + i) in
        let br = re.(boff + i) and bi = im.(boff + i) in
        re.(aoff + i) <- s *. (ar +. br);
        im.(aoff + i) <- s *. (ai +. bi);
        (* j (b - a) / sqrt2 *)
        re.(boff + i) <- s *. (ai -. bi);
        im.(boff + i) <- s *. (br -. ar)
      done)
    (pair_offsets sizes);
  out

let apply_rows sizes m =
  let out = Cmat.copy m in
  let rows = Cmat.rows out and cols = Cmat.cols out in
  let re = Cmat.unsafe_re out and im = Cmat.unsafe_im out in
  let s = 1. /. sqrt 2. in
  List.iter
    (fun (a, b) ->
      for jcol = 0 to cols - 1 do
        let aidx = a + (jcol * rows) and bidx = b + (jcol * rows) in
        let ar = re.(aidx) and ai = im.(aidx) in
        let br = re.(bidx) and bi = im.(bidx) in
        re.(aidx) <- s *. (ar +. br);
        im.(aidx) <- s *. (ai +. bi);
        (* j (a - b) / sqrt2 *)
        re.(bidx) <- s *. (bi -. ai);
        im.(bidx) <- s *. (ar -. br)
      done)
    (pair_offsets sizes);
  out

let apply (t : Loewner.t) =
  let rs = t.Loewner.right_sizes and ls = t.Loewner.left_sizes in
  { t with
    Loewner.ll = apply_rows ls (apply_cols rs t.Loewner.ll);
    sll = apply_rows ls (apply_cols rs t.Loewner.sll);
    w = apply_cols rs t.Loewner.w;
    v = apply_rows ls t.Loewner.v;
    r = apply_cols rs t.Loewner.r;
    l = apply_rows ls t.Loewner.l }

let imaginary_residue (t : Loewner.t) =
  let rel m =
    Cmat.max_imag m /. Stdlib.max (Cmat.norm_fro m) 1e-300
  in
  List.fold_left Stdlib.max 0.
    [ rel t.Loewner.ll; rel t.Loewner.sll; rel t.Loewner.w; rel t.Loewner.v ]
