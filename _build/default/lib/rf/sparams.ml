open Linalg

let scaled_identity z0 n = Cmat.scale_float z0 (Cmat.identity n)

let check_square name m =
  let r, c = Cmat.dims m in
  if r <> c then invalid_arg (Printf.sprintf "Sparams.%s: matrix must be square" name);
  r

let check_z0 z0 =
  if z0 <= 0. || not (Float.is_finite z0) then
    invalid_arg "Sparams: reference impedance must be positive and finite"

(* right division B A^{-1}: solve A^T X^T = B^T. *)
let rdiv b a name =
  match Lu.factorize (Cmat.transpose a) with
  | exception Lu.Singular _ ->
    invalid_arg (Printf.sprintf "Sparams.%s: singular conversion matrix" name)
  | f -> Cmat.transpose (Lu.solve f (Cmat.transpose b))

let z_to_s ~z0 z =
  check_z0 z0;
  let n = check_square "z_to_s" z in
  let zi = scaled_identity z0 n in
  rdiv (Cmat.sub z zi) (Cmat.add z zi) "z_to_s"

let s_to_z ~z0 s =
  check_z0 z0;
  let n = check_square "s_to_z" s in
  let id = Cmat.identity n in
  match Lu.factorize (Cmat.sub id s) with
  | exception Lu.Singular _ -> invalid_arg "Sparams.s_to_z: I - S singular"
  | f -> Cmat.scale_float z0 (Lu.solve f (Cmat.add id s))

let y_to_s ~z0 y =
  check_z0 z0;
  let n = check_square "y_to_s" y in
  let id = Cmat.identity n in
  let zy = Cmat.scale_float z0 y in
  rdiv (Cmat.sub id zy) (Cmat.add id zy) "y_to_s"

let s_to_y ~z0 s =
  check_z0 z0;
  let n = check_square "s_to_y" s in
  let id = Cmat.identity n in
  match Lu.factorize (Cmat.add id s) with
  | exception Lu.Singular _ -> invalid_arg "Sparams.s_to_y: I + S singular"
  | f -> Cmat.scale_float (1. /. z0) (Lu.solve f (Cmat.sub id s))

let z_to_y z =
  match Lu.factorize z with
  | exception Lu.Singular _ -> invalid_arg "Sparams.z_to_y: Z singular"
  | f -> Lu.solve f (Cmat.identity (Cmat.rows z))

let y_to_z y =
  match Lu.factorize y with
  | exception Lu.Singular _ -> invalid_arg "Sparams.y_to_z: Y singular"
  | f -> Lu.solve f (Cmat.identity (Cmat.rows y))

let map_samples f samples =
  Array.map
    (fun smp -> { smp with Statespace.Sampling.s = f smp.Statespace.Sampling.s })
    samples

let is_passive_sample ?(tol = 1e-9) s = Svd.norm2 s <= 1. +. tol

let max_singular_value samples =
  Array.fold_left
    (fun acc smp -> Stdlib.max acc (Svd.norm2 smp.Statespace.Sampling.s))
    0. samples

let descriptor_z_to_s ~z0 sys =
  check_z0 z0;
  let open Statespace.Descriptor in
  let m = inputs sys and p = outputs sys in
  if m <> p then invalid_arg "Sparams.descriptor_z_to_s: ports must match";
  (* S = I - 2 z0 (Z + z0 I)^{-1}; with G = Z + z0 I = D' + C(sE-A)^{-1}B,
     G^{-1} = D'^{-1} - D'^{-1} C (sE - (A - B D'^{-1} C))^{-1} B D'^{-1}. *)
  let d' = Cmat.add sys.d (scaled_identity z0 m) in
  let di =
    match Lu.inverse d' with
    | exception Lu.Singular _ ->
      invalid_arg "Sparams.descriptor_z_to_s: D + z0 I singular"
    | x -> x
  in
  let bdi = Cmat.mul sys.b di in
  let a_s = Cmat.sub sys.a (Cmat.mul bdi sys.c) in
  let c_s = Cmat.scale_float (2. *. z0) (Cmat.mul di sys.c) in
  let d_s = Cmat.sub (Cmat.identity m) (Cmat.scale_float (2. *. z0) di) in
  create ~e:sys.e ~a:a_s ~b:bdi ~c:c_s ~d:d_s
