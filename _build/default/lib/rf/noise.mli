(** Measurement-noise injection.

    Table 1 of the paper interpolates *measured* (hence noisy) data; our
    synthetic stand-in adds seeded complex Gaussian noise so every run is
    reproducible.  Two flavours: relative (each entry perturbed in
    proportion to its own magnitude — like VNA linearity error) and
    absolute-floor (like receiver noise). *)

(** [add_relative ~seed ~level samples] perturbs each entry [x] to
    [x * (1 + level * (g1 + j g2) / sqrt 2)] with standard normals
    [g1, g2].  [level = 0.01] is roughly a -40 dB error. *)
val add_relative :
  seed:int -> level:float ->
  Statespace.Sampling.sample array -> Statespace.Sampling.sample array

(** [add_floor ~seed ~sigma samples] adds i.i.d. complex Gaussian noise
    of standard deviation [sigma] to every entry. *)
val add_floor :
  seed:int -> sigma:float ->
  Statespace.Sampling.sample array -> Statespace.Sampling.sample array

(** [snr_db_to_level snr] converts a signal-to-noise ratio in dB to the
    [level] argument of {!add_relative} ([level = 10^(-snr/20)]). *)
val snr_db_to_level : float -> float
