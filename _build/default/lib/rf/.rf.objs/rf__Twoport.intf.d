lib/rf/twoport.mli: Linalg
