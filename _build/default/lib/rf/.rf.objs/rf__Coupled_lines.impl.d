lib/rf/coupled_lines.ml: Mna Sparams Statespace
