lib/rf/sparams.mli: Linalg Statespace
