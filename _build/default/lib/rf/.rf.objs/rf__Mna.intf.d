lib/rf/mna.mli: Linalg Statespace
