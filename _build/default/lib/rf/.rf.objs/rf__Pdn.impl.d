lib/rf/pdn.ml: Array Linalg Mna Rng Sparams Statespace
