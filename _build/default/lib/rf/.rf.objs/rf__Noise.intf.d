lib/rf/noise.mli: Statespace
