lib/rf/coupled_lines.mli: Mna Statespace
