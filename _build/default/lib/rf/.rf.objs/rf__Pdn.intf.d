lib/rf/pdn.mli: Mna Statespace
