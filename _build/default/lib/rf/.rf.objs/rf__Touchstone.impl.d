lib/rf/touchstone.ml: Array Buffer Cmat Cx Filename Float Format Linalg List Option Printf Statespace String
