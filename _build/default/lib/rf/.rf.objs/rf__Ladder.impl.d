lib/rf/ladder.ml: Mna Sparams Statespace
