lib/rf/passivity.mli: Statespace
