lib/rf/mna.ml: Array Cmat Cx Float Linalg List Printf Sparse Sparse_lu Statespace
