lib/rf/sparams.ml: Array Cmat Float Linalg Lu Printf Statespace Stdlib Svd
