lib/rf/noise.ml: Array Cmat Cx Linalg Rng Statespace
