lib/rf/twoport.ml: Cmat Cx Linalg List Printf
