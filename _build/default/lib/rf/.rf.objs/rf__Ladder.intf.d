lib/rf/ladder.mli: Mna Statespace
