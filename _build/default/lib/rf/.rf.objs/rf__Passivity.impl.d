lib/rf/passivity.ml: Array Cmat Cx Descriptor Eig Float Linalg List Lu Statespace Stdlib Svd
