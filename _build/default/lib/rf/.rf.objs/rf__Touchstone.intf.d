lib/rf/touchstone.mli: Statespace
