open Linalg

type number_format = Ri | Ma | Db
type parameter = S | Y | Z

type t = {
  parameter : parameter;
  z0 : float;
  samples : Statespace.Sampling.sample array;
}

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let strip_comment line =
  match String.index_opt line '!' with
  | Some i -> String.sub line 0 i
  | None -> line

type options = {
  funit : float;            (* multiplier to Hz *)
  opt_parameter : parameter;
  opt_format : number_format;
  opt_z0 : float;
}

let default_options = { funit = 1e9; opt_parameter = S; opt_format = Ma; opt_z0 = 50. }

let parse_option_line line =
  let tokens =
    String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
    |> List.filter (fun s -> s <> "")
    |> List.map String.uppercase_ascii
  in
  let rec go opts = function
    | [] -> opts
    | "#" :: rest -> go opts rest
    | "HZ" :: rest -> go { opts with funit = 1. } rest
    | "KHZ" :: rest -> go { opts with funit = 1e3 } rest
    | "MHZ" :: rest -> go { opts with funit = 1e6 } rest
    | "GHZ" :: rest -> go { opts with funit = 1e9 } rest
    | "S" :: rest -> go { opts with opt_parameter = S } rest
    | "Y" :: rest -> go { opts with opt_parameter = Y } rest
    | "Z" :: rest -> go { opts with opt_parameter = Z } rest
    | "RI" :: rest -> go { opts with opt_format = Ri } rest
    | "MA" :: rest -> go { opts with opt_format = Ma } rest
    | "DB" :: rest -> go { opts with opt_format = Db } rest
    | "R" :: value :: rest ->
      (match float_of_string_opt value with
       | Some z0 when z0 > 0. -> go { opts with opt_z0 = z0 } rest
       | Some _ | None -> fail "invalid reference impedance in option line")
    | tok :: _ -> fail "unsupported option token %S" tok
  in
  go default_options tokens

let decode fmt (x, y) =
  match fmt with
  | Ri -> Cx.make x y
  | Ma -> Cx.polar x (y *. Float.pi /. 180.)
  | Db -> Cx.polar (10. ** (x /. 20.)) (y *. Float.pi /. 180.)

let encode fmt (z : Cx.t) =
  match fmt with
  | Ri -> (z.Cx.re, z.Cx.im)
  | Ma -> (Cx.abs z, Cx.arg z *. 180. /. Float.pi)
  | Db ->
    let m = Cx.abs z in
    let mdb = if m <= 0. then -400. else 20. *. log10 m in
    (mdb, Cx.arg z *. 180. /. Float.pi)

(* Entry order within one frequency record. *)
let entry_order nports =
  if nports = 2 then [| (0, 0); (1, 0); (0, 1); (1, 1) |]
  else
    Array.init (nports * nports) (fun k -> (k / nports, k mod nports))

let parse ~nports text =
  if nports < 1 then invalid_arg "Touchstone.parse: nports must be >= 1";
  let lines = String.split_on_char '\n' text in
  let options = ref None in
  let numbers = ref [] in
  List.iter
    (fun raw ->
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        if line.[0] = '#' then begin
          match !options with
          | Some _ -> fail "duplicate option line"
          | None -> options := Some (parse_option_line line)
        end
        else
          String.split_on_char ' '
            (String.map (function '\t' -> ' ' | c -> c) line)
          |> List.iter (fun tok ->
              if tok <> "" then
                match float_of_string_opt tok with
                | Some x -> numbers := x :: !numbers
                | None -> fail "unexpected token %S in data" tok))
    lines;
  let opts = Option.value !options ~default:default_options in
  let data = Array.of_list (List.rev !numbers) in
  let per_record = 1 + (2 * nports * nports) in
  if Array.length data = 0 then fail "no data records";
  if Array.length data mod per_record <> 0 then
    fail "data length %d is not a multiple of %d values per frequency point"
      (Array.length data) per_record;
  let nrec = Array.length data / per_record in
  let order = entry_order nports in
  let samples =
    Array.init nrec (fun k ->
        let base = k * per_record in
        let freq = data.(base) *. opts.funit in
        let s = Cmat.zeros nports nports in
        Array.iteri
          (fun e (i, jcol) ->
            let x = data.(base + 1 + (2 * e)) in
            let y = data.(base + 2 + (2 * e)) in
            Cmat.set s i jcol (decode opts.opt_format (x, y)))
          order;
        { Statespace.Sampling.freq; s })
  in
  (* The spec requires ascending frequencies; tolerate but sort. *)
  Array.sort
    (fun a b ->
      compare a.Statespace.Sampling.freq b.Statespace.Sampling.freq)
    samples;
  { parameter = opts.opt_parameter; z0 = opts.opt_z0; samples }

let print ?(format = Ri) ?comment t =
  let buf = Buffer.create 4096 in
  (match comment with
   | Some c ->
     String.split_on_char '\n' c
     |> List.iter (fun line -> Buffer.add_string buf ("! " ^ line ^ "\n"))
   | None -> ());
  let fmt_name = match format with Ri -> "RI" | Ma -> "MA" | Db -> "DB" in
  let param_name = match t.parameter with S -> "S" | Y -> "Y" | Z -> "Z" in
  Buffer.add_string buf
    (Printf.sprintf "# HZ %s %s R %g\n" param_name fmt_name t.z0);
  Array.iter
    (fun smp ->
      let s = smp.Statespace.Sampling.s in
      let nports = Cmat.rows s in
      let order = entry_order nports in
      Buffer.add_string buf (Printf.sprintf "%.10g" smp.Statespace.Sampling.freq);
      Array.iteri
        (fun e (i, jcol) ->
          let x, y = encode format (Cmat.get s i jcol) in
          (* wrap long records: one matrix row per line for n >= 3 *)
          if nports >= 3 && e mod nports = 0 && e > 0 then
            Buffer.add_string buf "\n ";
          Buffer.add_string buf (Printf.sprintf " %.10g %.10g" x y))
        order;
      Buffer.add_char buf '\n')
    t.samples;
  Buffer.contents buf

let ports_of_filename name =
  let base = Filename.basename name in
  match String.rindex_opt base '.' with
  | None -> fail "filename %S has no extension" name
  | Some i ->
    let ext = String.lowercase_ascii (String.sub base (i + 1) (String.length base - i - 1)) in
    let len = String.length ext in
    if len >= 3 && ext.[0] = 's' && ext.[len - 1] = 'p' then
      match int_of_string_opt (String.sub ext 1 (len - 2)) with
      | Some n when n >= 1 -> n
      | Some _ | None -> fail "cannot read port count from extension %S" ext
    else fail "expected a .sNp extension, got %S" ext

let read_file path =
  let nports = ports_of_filename path in
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse ~nports text

let write_file path ?format ?comment t =
  let oc = open_out path in
  output_string oc (print ?format ?comment t);
  close_out oc
