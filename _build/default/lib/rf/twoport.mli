(** Two-port network algebra (ABCD / chain parameters).

    The chain representation composes by matrix product, which makes
    cascading trivially associative — the standard way to build up
    lines, matching networks and de-embedding structures.  All matrices
    here are [2 x 2] complex ({!Linalg.Cmat.t}); frequency dependence is
    handled by evaluating per frequency point. *)

(** [series_impedance z] — ABCD of a series element: [[1, Z], [0, 1]]. *)
val series_impedance : Linalg.Cx.t -> Linalg.Cmat.t

(** [shunt_admittance y] — ABCD of a shunt element: [[1, 0], [Y, 1]]. *)
val shunt_admittance : Linalg.Cx.t -> Linalg.Cmat.t

(** Ideal transmission line of characteristic impedance [z0] and
    electrical length [theta] radians (lossless):
    [[cos t, j z0 sin t], [j sin t / z0, cos t]]. *)
val line : z0:float -> theta:float -> Linalg.Cmat.t

(** [cascade a b] is the chain product [a * b] ([a] nearest the source). *)
val cascade : Linalg.Cmat.t -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [chain list] cascades many sections (identity for []). *)
val chain : Linalg.Cmat.t list -> Linalg.Cmat.t

(** [s_of_abcd ~z0 m] converts chain to scattering parameters at a real
    reference impedance.  Raises [Invalid_argument] on a degenerate
    network ([A + B/z0 + C z0 + D = 0]). *)
val s_of_abcd : z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [abcd_of_s ~z0 s] inverts {!s_of_abcd}.  Raises [Invalid_argument]
    when [S21 = 0] (no transmission: the chain form does not exist). *)
val abcd_of_s : z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [cascade_s ~z0 s1 s2] cascades two-ports given as S-parameters. *)
val cascade_s : z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [input_impedance ~load m] — impedance seen at port 1 with [load] at
    port 2: [(A Zl + B) / (C Zl + D)]. *)
val input_impedance : load:Linalg.Cx.t -> Linalg.Cmat.t -> Linalg.Cx.t

(** Chain inverse: [cascade m (inverse m) = I].  Raises
    [Invalid_argument] on a singular chain matrix. *)
val inverse : Linalg.Cmat.t -> Linalg.Cmat.t

(** [deembed ~fixture measured] strips a known input fixture from a
    measured cascade: returns [inverse fixture * measured].  Apply with
    a right-side fixture as [cascade measured (inverse fixture)]. *)
val deembed : fixture:Linalg.Cmat.t -> Linalg.Cmat.t -> Linalg.Cmat.t
