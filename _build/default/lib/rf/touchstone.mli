(** Touchstone v1 (.sNp) reader/writer.

    The industry interchange format for sampled network parameters, and
    the natural input to the fitting CLI.  Supports RI / MA / DB number
    formats, Hz/kHz/MHz/GHz units, S/Y/Z parameters and any port count.
    Ordering follows the v1 specification: 2-port data is column-major
    (S11 S21 S12 S22); other port counts are row-major with arbitrary
    line wrapping. *)

type number_format = Ri | Ma | Db
type parameter = S | Y | Z

type t = {
  parameter : parameter;
  z0 : float;
  samples : Statespace.Sampling.sample array;  (** frequencies in Hz *)
}

exception Parse_error of string

(** [parse ~nports text] parses the body of a Touchstone file.  The port
    count is not recorded in v1 files — it comes from the file extension
    — so it must be supplied. *)
val parse : nports:int -> string -> t

(** [print ?format ?comment data] renders a v1 file (Hz, chosen number
    format, default [Ri]). *)
val print : ?format:number_format -> ?comment:string -> t -> string

(** [ports_of_filename "x.s4p"] extracts 4; raises {!Parse_error} when
    the extension is not [.sNp]. *)
val ports_of_filename : string -> int

val read_file : string -> t
val write_file : string -> ?format:number_format -> ?comment:string -> t -> unit
