(** Passivity verification of scattering macromodels.

    A fitted S-parameter model is passive iff its transfer matrix is
    bounded-real: [sigma_max (S(jw)) <= 1] for all [w].  Sampled checks
    ({!Sparams.is_passive_sample}) can miss violations between samples;
    the Hamiltonian test cannot: [|S|_inf < 1] holds exactly when the
    associated Hamiltonian matrix has no purely imaginary eigenvalues,
    and any such eigenvalues pinpoint the frequencies where
    [sigma_max(S(jw))] crosses 1 (Boyd–Balakrishnan–Kabamba).

    This is the standard post-fitting gate before a macromodel is handed
    to a transient simulator: a non-passive model can make an otherwise
    stable circuit blow up. *)

type verdict =
  | Passive
  | Feedthrough_violation of float
      (** [sigma_max D >= gamma]: violated at infinite frequency (the
          test precondition fails); the payload is [sigma_max D] *)
  | Violations of float list
      (** crossing frequencies in Hz, ascending: boundaries of the bands
          where [sigma_max (S(jw)) > 1] *)

(** [check ?tol ?gamma_margin sys] runs the Hamiltonian test at level
    [gamma = 1 + gamma_margin] (default margin [1e-6]): violations are
    frequencies where [sigma_max (S(jw))] crosses [gamma].  The margin
    keeps physically borderline models — lossless circuits reflect fully
    at infinite frequency, so [sigma_max D = 1] exactly — on the passive
    side; tighten it to hunt for grazing violations.  [tol] is the
    relative threshold under which a Hamiltonian eigenvalue counts as
    purely imaginary (default [1e-8]).

    Singular-[E] models are reduced with {!Statespace.Descriptor.to_proper}
    first; an index > 1 descriptor raises [Invalid_argument]. *)
val check :
  ?tol:float -> ?gamma_margin:float -> Statespace.Descriptor.t -> verdict

(** [max_violation sys ~freqs] supplements {!check} with a sampled upper
    bound: the largest [sigma_max (S(jw)) - 1] over the grid (negative
    when passive there). *)
val max_violation : Statespace.Descriptor.t -> freqs:float array -> float
