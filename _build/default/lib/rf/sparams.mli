(** Network-parameter conversions.

    All conversions use a common real reference impedance [z0] (ohms) on
    every port, the usual 50-ohm single-impedance convention:
    [S = (Z - z0 I)(Z + z0 I)^{-1}]. *)

(** [z_to_s ~z0 z] converts an impedance matrix to scattering. *)
val z_to_s : z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [s_to_z ~z0 s] inverts {!z_to_s}.  Raises [Invalid_argument] when
    [I - S] is singular (ideal short). *)
val s_to_z : z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [y_to_s ~z0 y] = [(I - z0 Y)(I + z0 Y)^{-1}]. *)
val y_to_s : z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t

val s_to_y : z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [z_to_y z] is the plain inverse. *)
val z_to_y : Linalg.Cmat.t -> Linalg.Cmat.t

val y_to_z : Linalg.Cmat.t -> Linalg.Cmat.t

(** Map a conversion over sampled data. *)
val map_samples :
  (Linalg.Cmat.t -> Linalg.Cmat.t) ->
  Statespace.Sampling.sample array -> Statespace.Sampling.sample array

(** [is_passive_sample s] checks [sigma_max(S) <= 1 + tol] — the sampled
    passivity test for scattering data. *)
val is_passive_sample : ?tol:float -> Linalg.Cmat.t -> bool

(** Largest singular value of [S] over a set of samples (passivity
    margin: passive iff <= 1). *)
val max_singular_value : Statespace.Sampling.sample array -> float

(** [descriptor_z_to_s ~z0 sys] converts an impedance-parameter
    descriptor model (from {!Mna}) into a scattering-parameter one
    algebraically, without sampling:
    with [W = (Z + z0 I)^{-1}], [S = I - 2 z0 W], realized by augmenting
    the MNA equations with the port resistances. *)
val descriptor_z_to_s : z0:float -> Statespace.Descriptor.t -> Statespace.Descriptor.t
