(** Coupled multiconductor transmission lines.

    [lines] parallel conductors, each a cascade of [sections] lumped RLC
    cells, with inductive (mutual-[k]) and capacitive coupling between
    adjacent conductors — the canonical crosstalk structure the paper's
    introduction motivates ("signal delay and crosstalk").  Ports:
    [2*lines], ordered near end of line 0, 1, ... then far end of line
    0, 1, ... — so with 3 lines, port 0 drives the aggressor and ports
    1/4 observe near/far-end victim noise. *)

type spec = {
  lines : int;          (** number of conductors, >= 2 *)
  sections : int;       (** cells per conductor, >= 1 *)
  series_r : float;     (** ohms per cell *)
  series_l : float;     (** henries per cell *)
  shunt_c : float;      (** farads per cell (to ground) *)
  coupling_k : float;   (** inductive coupling coefficient to the
                            neighbouring conductor, in [0, 1) *)
  mutual_c : float;     (** farads per cell between adjacent conductors *)
}

val default_spec : spec

val build : spec -> Mna.t

(** Scattering samples / model at reference [z0]. *)
val scattering : spec -> z0:float -> float array -> Statespace.Sampling.sample array

val scattering_model : spec -> z0:float -> Statespace.Descriptor.t

(** Port index helpers. *)
val near_port : spec -> line:int -> int

val far_port : spec -> line:int -> int
