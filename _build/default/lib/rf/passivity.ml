open Linalg

type verdict =
  | Passive
  | Feedthrough_violation of float
  | Violations of float list

let check ?(tol = 1e-8) ?(gamma_margin = 1e-6) sys =
  let gamma = 1. +. gamma_margin in
  let open Statespace in
  let n = Descriptor.order sys in
  if n = 0 then begin
    let sd = Svd.norm2 sys.Descriptor.d in
    if sd >= gamma then Feedthrough_violation sd else Passive
  end
  else begin
    (* eliminate any algebraic part (MNA models, Loewner models with
       feedthrough encoded at infinity), then absorb the nonsingular E *)
    let sys = Descriptor.to_proper sys in
    let a, b =
      match Lu.factorize sys.Descriptor.e with
      | exception Lu.Singular _ ->
        invalid_arg "Passivity.check: E is singular after index reduction"
      | f -> (Lu.solve f sys.Descriptor.a, Lu.solve f sys.Descriptor.b)
    in
    let c = sys.Descriptor.c and d = sys.Descriptor.d in
    let sd = Svd.norm2 d in
    if sd >= gamma then Feedthrough_violation sd
    else begin
      (* bounded-real Hamiltonian at level gamma = 1 + margin, with H
         for conjugate transpose:
         R = gamma^2 I - D^H D  (positive definite since sigma_max D < gamma)
         F = A + B R^-1 D^H C
         M = [[F, B R^-1 B^H], [-C^H (I + D R^-1 D^H) C, -F^H]]
         Imaginary eigenvalues <=> sigma_max S(jw) crosses gamma.  The
         margin keeps models that merely touch 1 (lossless at some
         frequency, reflective at infinity) on the passive side. *)
      let m_in = Cmat.cols b in
      let p_out = Cmat.rows c in
      let r =
        Cmat.sub
          (Cmat.scale_float (gamma *. gamma) (Cmat.identity m_in))
          (Cmat.mul_cn d d)
      in
      let rinv = Lu.inverse r in
      let f = Cmat.add a (Cmat.mul b (Cmat.mul rinv (Cmat.mul_cn d c))) in
      let top_right = Cmat.mul b (Cmat.mul rinv (Cmat.ctranspose b)) in
      let middle =
        Cmat.add (Cmat.identity p_out)
          (Cmat.mul d (Cmat.mul rinv (Cmat.ctranspose d)))
      in
      let bottom_left =
        Cmat.neg (Cmat.mul_cn c (Cmat.mul middle c))
      in
      let ham =
        Cmat.blocks
          [ [ f; top_right ];
            [ bottom_left; Cmat.neg (Cmat.ctranspose f) ] ]
      in
      let eigs = Eig.eigenvalues ham in
      let scale =
        Array.fold_left (fun acc e -> Stdlib.max acc (Cx.abs e)) 1e-300 eigs
      in
      let crossings =
        Array.to_list eigs
        |> List.filter_map (fun (e : Cx.t) ->
            if abs_float e.Cx.re <= tol *. scale && e.Cx.im > 0. then
              Some (e.Cx.im /. (2. *. Float.pi))
            else None)
        |> List.sort_uniq compare
      in
      match crossings with
      | [] -> Passive
      | list -> Violations list
    end
  end

let max_violation sys ~freqs =
  Array.fold_left
    (fun acc f ->
      Stdlib.max acc (Svd.norm2 (Statespace.Descriptor.eval_freq sys f) -. 1.))
    neg_infinity freqs
