open Linalg

let add_relative ~seed ~level samples =
  if level < 0. then invalid_arg "Noise.add_relative: level must be >= 0";
  let rng = Rng.create seed in
  let scale = level /. sqrt 2. in
  Array.map
    (fun smp ->
      let s =
        Cmat.map
          (fun x ->
            let g = Cx.scale scale (Rng.complex_gaussian rng) in
            Cx.mul x (Cx.add Cx.one g))
          smp.Statespace.Sampling.s
      in
      { smp with Statespace.Sampling.s })
    samples

let add_floor ~seed ~sigma samples =
  if sigma < 0. then invalid_arg "Noise.add_floor: sigma must be >= 0";
  let rng = Rng.create seed in
  let scale = sigma /. sqrt 2. in
  Array.map
    (fun smp ->
      let s =
        Cmat.map
          (fun x -> Cx.add x (Cx.scale scale (Rng.complex_gaussian rng)))
          smp.Statespace.Sampling.s
      in
      { smp with Statespace.Sampling.s })
    samples

let snr_db_to_level snr = 10. ** (-.snr /. 20.)
