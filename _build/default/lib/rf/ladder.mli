(** RLC ladder / lossy transmission-line segment workloads.

    A cascade of [sections] identical cells — series R+L, shunt C (+G) —
    is the textbook lumped model of an interconnect line and makes a
    well-conditioned quickstart example: 2 ports, order [2*sections],
    known physics (delay, ringing, characteristic impedance). *)

type spec = {
  sections : int;      (** number of RLC cells, >= 1 *)
  series_r : float;    (** ohms per cell *)
  series_l : float;    (** henries per cell *)
  shunt_c : float;     (** farads per cell *)
  shunt_g : float;     (** siemens per cell (0 allowed) *)
  termination : float; (** load resistance at the far end, ohms (0 = open) *)
}

val default_spec : spec

(** Build the two-port (input = node 1, output = far end) ladder. *)
val build : spec -> Mna.t

(** Scattering samples of the ladder at reference [z0]. *)
val scattering : spec -> z0:float -> float array -> Statespace.Sampling.sample array

(** The underlying scattering descriptor model. *)
val scattering_model : spec -> z0:float -> Statespace.Descriptor.t
