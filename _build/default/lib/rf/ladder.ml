type spec = {
  sections : int;
  series_r : float;
  series_l : float;
  shunt_c : float;
  shunt_g : float;
  termination : float;
}

let default_spec =
  { sections = 10; series_r = 0.5; series_l = 2e-9; shunt_c = 1e-12;
    shunt_g = 0.; termination = 50. }

let build spec =
  if spec.sections < 1 then invalid_arg "Ladder.build: need at least one section";
  (* nodes: 0 = ground, 1 = input, 1+k = after cell k *)
  let nodes = spec.sections + 2 in
  let circuit = ref (Mna.create ~nodes) in
  for k = 0 to spec.sections - 1 do
    let a = 1 + k and b = 2 + k in
    circuit :=
      Mna.add !circuit
        (Mna.Rl_branch { a; b; ohms = spec.series_r; henries = spec.series_l });
    circuit := Mna.add !circuit (Mna.Capacitor { a = b; b = 0; farads = spec.shunt_c });
    if spec.shunt_g > 0. then
      circuit :=
        Mna.add !circuit (Mna.Resistor { a = b; b = 0; ohms = 1. /. spec.shunt_g })
  done;
  if spec.termination > 0. then
    circuit :=
      Mna.add !circuit
        (Mna.Resistor { a = spec.sections + 1; b = 0; ohms = spec.termination });
  let _, c = Mna.add_port !circuit ~plus:1 ~minus:0 in
  let _, c = Mna.add_port c ~plus:(spec.sections + 1) ~minus:0 in
  c

let scattering_model spec ~z0 =
  Sparams.descriptor_z_to_s ~z0 (Mna.to_descriptor (build spec))

let scattering spec ~z0 freqs =
  Statespace.Sampling.sample_system (scattering_model spec ~z0) freqs
