open Linalg

let check_two_port name m =
  if Cmat.dims m <> (2, 2) then
    invalid_arg (Printf.sprintf "Twoport.%s: expected a 2x2 matrix" name)

let series_impedance z =
  Cmat.of_rows [ [ Cx.one; z ]; [ Cx.zero; Cx.one ] ]

let shunt_admittance y =
  Cmat.of_rows [ [ Cx.one; Cx.zero ]; [ y; Cx.one ] ]

let line ~z0 ~theta =
  if z0 <= 0. then invalid_arg "Twoport.line: z0 must be positive";
  let c = cos theta and s = sin theta in
  Cmat.of_rows
    [ [ Cx.of_float c; Cx.make 0. (z0 *. s) ];
      [ Cx.make 0. (s /. z0); Cx.of_float c ] ]

let cascade a b =
  check_two_port "cascade" a;
  check_two_port "cascade" b;
  Cmat.mul a b

let chain = function
  | [] -> Cmat.identity 2
  | first :: rest -> List.fold_left cascade first rest

let s_of_abcd ~z0 m =
  check_two_port "s_of_abcd" m;
  if z0 <= 0. then invalid_arg "Twoport.s_of_abcd: z0 must be positive";
  let a = Cmat.get m 0 0 and b = Cmat.get m 0 1 in
  let c = Cmat.get m 1 0 and d = Cmat.get m 1 1 in
  let b' = Cx.scale (1. /. z0) b in
  let c' = Cx.scale z0 c in
  let denom = Cx.add (Cx.add a b') (Cx.add c' d) in
  if Cx.abs denom = 0. then
    invalid_arg "Twoport.s_of_abcd: degenerate network";
  let inv = Cx.inv denom in
  let det = Cx.sub (Cx.mul a d) (Cx.mul b c) in
  Cmat.of_rows
    [ [ Cx.mul inv (Cx.sub (Cx.add a b') (Cx.add c' d));
        Cx.mul inv (Cx.scale 2. det) ];
      [ Cx.scale 2. inv;
        Cx.mul inv (Cx.add (Cx.sub b' a) (Cx.sub d c')) ] ]

let abcd_of_s ~z0 s =
  check_two_port "abcd_of_s" s;
  if z0 <= 0. then invalid_arg "Twoport.abcd_of_s: z0 must be positive";
  let s11 = Cmat.get s 0 0 and s12 = Cmat.get s 0 1 in
  let s21 = Cmat.get s 1 0 and s22 = Cmat.get s 1 1 in
  if Cx.abs s21 = 0. then
    invalid_arg "Twoport.abcd_of_s: S21 = 0 has no chain representation";
  let two_s21 = Cx.scale 2. s21 in
  let p = Cx.mul (Cx.add Cx.one s11) (Cx.sub Cx.one s22) in
  let q = Cx.mul (Cx.add Cx.one s11) (Cx.add Cx.one s22) in
  let r = Cx.mul (Cx.sub Cx.one s11) (Cx.sub Cx.one s22) in
  let t = Cx.mul (Cx.sub Cx.one s11) (Cx.add Cx.one s22) in
  let ss = Cx.mul s12 s21 in
  Cmat.of_rows
    [ [ Cx.div (Cx.add p ss) two_s21;
        Cx.scale z0 (Cx.div (Cx.sub q ss) two_s21) ];
      [ Cx.scale (1. /. z0) (Cx.div (Cx.sub r ss) two_s21);
        Cx.div (Cx.add t ss) two_s21 ] ]

let cascade_s ~z0 s1 s2 =
  s_of_abcd ~z0 (cascade (abcd_of_s ~z0 s1) (abcd_of_s ~z0 s2))

let inverse m =
  check_two_port "inverse" m;
  let a = Cmat.get m 0 0 and b = Cmat.get m 0 1 in
  let c = Cmat.get m 1 0 and d = Cmat.get m 1 1 in
  let det = Cx.sub (Cx.mul a d) (Cx.mul b c) in
  if Cx.abs det = 0. then invalid_arg "Twoport.inverse: singular chain matrix";
  let inv = Cx.inv det in
  Cmat.of_rows
    [ [ Cx.mul inv d; Cx.neg (Cx.mul inv b) ];
      [ Cx.neg (Cx.mul inv c); Cx.mul inv a ] ]

let deembed ~fixture measured = cascade (inverse fixture) measured

let input_impedance ~load m =
  check_two_port "input_impedance" m;
  let a = Cmat.get m 0 0 and b = Cmat.get m 0 1 in
  let c = Cmat.get m 1 0 and d = Cmat.get m 1 1 in
  let denom = Cx.add (Cx.mul c load) d in
  if Cx.abs denom = 0. then
    invalid_arg "Twoport.input_impedance: singular termination";
  Cx.div (Cx.add (Cx.mul a load) b) denom
