type spec = {
  lines : int;
  sections : int;
  series_r : float;
  series_l : float;
  shunt_c : float;
  coupling_k : float;
  mutual_c : float;
}

let default_spec =
  { lines = 3; sections = 8; series_r = 0.3; series_l = 2e-9;
    shunt_c = 0.8e-12; coupling_k = 0.35; mutual_c = 0.25e-12 }

let validate spec =
  if spec.lines < 2 then invalid_arg "Coupled_lines.build: need >= 2 lines";
  if spec.sections < 1 then invalid_arg "Coupled_lines.build: need >= 1 section";
  if spec.coupling_k < 0. || spec.coupling_k >= 1. then
    invalid_arg "Coupled_lines.build: coupling_k must be in [0, 1)"

let build spec =
  validate spec;
  (* node (l, k) = 1 + l*(sections+1) + k, k = 0 .. sections *)
  let node l k = 1 + (l * (spec.sections + 1)) + k in
  let nodes = 1 + (spec.lines * (spec.sections + 1)) in
  let circuit = ref (Mna.create ~nodes) in
  (* series branches first, so their inductive indices are predictable:
     branch (l, k) has index l*sections + k *)
  for l = 0 to spec.lines - 1 do
    for k = 0 to spec.sections - 1 do
      circuit :=
        Mna.add !circuit
          (Mna.Rl_branch
             { a = node l k; b = node l (k + 1);
               ohms = spec.series_r; henries = spec.series_l })
    done
  done;
  (* inductive coupling between corresponding cells of adjacent lines *)
  let m = spec.coupling_k *. spec.series_l in
  if m > 0. then
    for l = 0 to spec.lines - 2 do
      for k = 0 to spec.sections - 1 do
        circuit :=
          Mna.add !circuit
            (Mna.Mutual
               { k1 = (l * spec.sections) + k;
                 k2 = ((l + 1) * spec.sections) + k;
                 henries = m })
      done
    done;
  (* shunt and inter-line capacitance at every interior/far node *)
  for l = 0 to spec.lines - 1 do
    for k = 1 to spec.sections do
      circuit :=
        Mna.add !circuit
          (Mna.Capacitor { a = node l k; b = 0; farads = spec.shunt_c })
    done
  done;
  if spec.mutual_c > 0. then
    for l = 0 to spec.lines - 2 do
      for k = 1 to spec.sections do
        circuit :=
          Mna.add !circuit
            (Mna.Capacitor
               { a = node l k; b = node (l + 1) k; farads = spec.mutual_c })
      done
    done;
  (* ports: near ends then far ends *)
  for l = 0 to spec.lines - 1 do
    let _, c = Mna.add_port !circuit ~plus:(node l 0) ~minus:0 in
    circuit := c
  done;
  for l = 0 to spec.lines - 1 do
    let _, c = Mna.add_port !circuit ~plus:(node l spec.sections) ~minus:0 in
    circuit := c
  done;
  !circuit

let scattering_model spec ~z0 =
  Sparams.descriptor_z_to_s ~z0 (Mna.to_descriptor (build spec))

let scattering spec ~z0 freqs =
  Statespace.Sampling.sample_system (scattering_model spec ~z0) freqs

let near_port spec ~line =
  if line < 0 || line >= spec.lines then invalid_arg "Coupled_lines.near_port";
  line

let far_port spec ~line =
  if line < 0 || line >= spec.lines then invalid_arg "Coupled_lines.far_port";
  spec.lines + line
