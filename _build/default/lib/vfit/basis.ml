open Linalg

type group =
  | Real of float
  | Pair of Cx.t

type t = { groups : group array }

let group_size = function Real _ -> 1 | Pair _ -> 2

let size t = Array.fold_left (fun acc g -> acc + group_size g) 0 t.groups

let poles t =
  let out = ref [] in
  Array.iter
    (fun g ->
      match g with
      | Real a -> out := Cx.of_float a :: !out
      | Pair a -> out := Cx.conj a :: a :: !out)
    t.groups;
  Array.of_list (List.rev !out)

let initial ~n ~freq_lo ~freq_hi =
  if n < 1 then invalid_arg "Basis.initial: need at least one pole";
  if freq_lo <= 0. || freq_hi <= freq_lo then
    invalid_arg "Basis.initial: need 0 < freq_lo < freq_hi";
  let npairs = n / 2 in
  let groups = ref [] in
  let log_lo = log10 (2. *. Float.pi *. freq_lo) in
  let log_hi = log10 (2. *. Float.pi *. freq_hi) in
  for k = 0 to npairs - 1 do
    let t =
      if npairs = 1 then 0.5
      else float_of_int k /. float_of_int (npairs - 1)
    in
    let w = 10. ** (log_lo +. ((log_hi -. log_lo) *. t)) in
    groups := Pair (Cx.make (-.w /. 100.) w) :: !groups
  done;
  if n land 1 = 1 then begin
    let w = 10. ** ((log_lo +. log_hi) /. 2.) in
    groups := Real (-.w) :: !groups
  end;
  { groups = Array.of_list (List.rev !groups) }

let of_poles arr =
  let snapped =
    Array.map
      (fun (p : Cx.t) ->
        if abs_float p.Cx.im <= 1e-8 *. (1. +. Cx.abs p) then
          Cx.make p.Cx.re 0.
        else p)
      arr
  in
  let groups = ref [] in
  let used = Array.make (Array.length snapped) false in
  Array.iteri
    (fun i p ->
      if not used.(i) then begin
        used.(i) <- true;
        if Cx.im p = 0. then groups := Real (Cx.re p) :: !groups
        else begin
          let target = Cx.conj p in
          (* consume the nearest unused conjugate partner if present *)
          let best = ref (-1) and best_d = ref infinity in
          Array.iteri
            (fun j q ->
              if (not used.(j)) && j <> i then begin
                let d = Cx.abs (Cx.sub q target) in
                if d < !best_d then begin
                  best := j;
                  best_d := d
                end
              end)
            snapped;
          if !best >= 0 && !best_d <= 1e-6 *. (1. +. Cx.abs p) then
            used.(!best) <- true;
          let rep = if Cx.im p > 0. then p else Cx.conj p in
          groups := Pair rep :: !groups
        end
      end)
    snapped;
  { groups = Array.of_list (List.rev !groups) }

let row t s =
  let out = Array.make (size t) Cx.zero in
  let pos = ref 0 in
  Array.iter
    (fun g ->
      match g with
      | Real a ->
        out.(!pos) <- Cx.inv (Cx.sub s (Cx.of_float a));
        incr pos
      | Pair a ->
        let pa = Cx.inv (Cx.sub s a) in
        let pc = Cx.inv (Cx.sub s (Cx.conj a)) in
        out.(!pos) <- Cx.add pa pc;
        out.(!pos + 1) <- Cx.mul Cx.j (Cx.sub pa pc);
        pos := !pos + 2)
    t.groups;
  out

let residues t coeffs =
  if Array.length coeffs <> size t then
    invalid_arg "Basis.residues: coefficient count mismatch";
  let out = ref [] in
  let pos = ref 0 in
  Array.iter
    (fun g ->
      match g with
      | Real _ ->
        out := Cx.of_float coeffs.(!pos) :: !out;
        incr pos
      | Pair _ ->
        (* coeff' * (1/(s-a) + 1/(s-abar)) + coeff'' * (j/(s-a) - j/(s-abar))
           = (c' + j c'')/(s-a) + (c' - j c'')/(s-abar) *)
        let c = Cx.make coeffs.(!pos) coeffs.(!pos + 1) in
        out := Cx.conj c :: c :: !out;
        pos := !pos + 2)
    t.groups;
  Array.of_list (List.rev !out)

let relocation_matrix t sigma_coeffs =
  let n = size t in
  if Array.length sigma_coeffs <> n then
    invalid_arg "Basis.relocation_matrix: coefficient count mismatch";
  let m = Rmat.create n n in
  let pos = ref 0 in
  Array.iter
    (fun g ->
      match g with
      | Real a ->
        let i = !pos in
        Rmat.set m i i a;
        (* subtract b c~: b = 1 *)
        for jcol = 0 to n - 1 do
          Rmat.set m i jcol (Rmat.get m i jcol -. sigma_coeffs.(jcol))
        done;
        incr pos
      | Pair p ->
        let i = !pos in
        let alpha = Cx.re p and beta = Cx.im p in
        Rmat.set m i i alpha;
        Rmat.set m i (i + 1) beta;
        Rmat.set m (i + 1) i (-.beta);
        Rmat.set m (i + 1) (i + 1) alpha;
        (* b = [2; 0] *)
        for jcol = 0 to n - 1 do
          Rmat.set m i jcol (Rmat.get m i jcol -. (2. *. sigma_coeffs.(jcol)))
        done;
        pos := !pos + 2)
    t.groups;
  m

let enforce_stability t =
  { groups =
      Array.map
        (fun g ->
          match g with
          | Real a -> Real (if a > 0. then -.a else a)
          | Pair p ->
            if Cx.re p > 0. then Pair (Cx.make (-.Cx.re p) (Cx.im p)) else Pair p)
        t.groups }
