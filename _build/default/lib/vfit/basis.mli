(** Partial-fraction basis with real coefficients for vector fitting.

    A pole set closed under conjugation is stored as groups — real poles
    and complex pairs (upper-half-plane representative).  Each real pole
    carries one real coefficient; each pair carries two (the residue's
    real and imaginary part), using Gustavsen's real-arithmetic
    parametrization so every least-squares problem stays real and fitted
    models have real impulse responses. *)

type group =
  | Real of float          (** pole on the real axis *)
  | Pair of Linalg.Cx.t    (** pole with [im > 0]; the conjugate is implied *)

type t = { groups : group array }

(** Number of scalar coefficients = number of poles. *)
val size : t -> int

(** The full conjugate-closed pole list (length [size]). *)
val poles : t -> Linalg.Cx.t array

(** [initial ~n ~freq_lo ~freq_hi] — standard VF starting poles: [n/2]
    complex pairs with imaginary parts log-spaced over the band and real
    parts [-im/100]; one extra real pole when [n] is odd. *)
val initial : n:int -> freq_lo:float -> freq_hi:float -> t

(** [of_poles arr] groups an arbitrary conjugate-closed pole array;
    poles with tiny imaginary part are snapped to the real axis.
    Unpaired complex poles are paired with their implied conjugate. *)
val of_poles : Linalg.Cx.t array -> t

(** [row t s] evaluates the basis functions at [s]: a length-[size]
    complex row such that [sum_n coeff_n * row_n = sum residues/(s-a)]
    for real coefficient vectors. *)
val row : t -> Linalg.Cx.t -> Linalg.Cx.t array

(** [residues t coeffs] converts real coefficients (length [size]) into
    per-pole complex residues aligned with {!poles}. *)
val residues : t -> float array -> Linalg.Cx.t array

(** [relocation_matrix t sigma_coeffs] is the real matrix
    [A - b c~^T] whose eigenvalues are the zeros of the sigma function —
    the relocated poles (Gustavsen's appendix formulation). *)
val relocation_matrix : t -> float array -> Linalg.Rmat.t

(** Reflect any right-half-plane group into the left half plane. *)
val enforce_stability : t -> t
