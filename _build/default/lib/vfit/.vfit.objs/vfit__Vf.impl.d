lib/vfit/vf.ml: Array Basis Cmat Cx Descriptor Eig Float Linalg List Logs Qr Rmat Sampling Statespace Stdlib Svd
