lib/vfit/basis.mli: Linalg
