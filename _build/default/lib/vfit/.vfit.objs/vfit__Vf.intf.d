lib/vfit/vf.mli: Basis Linalg Statespace
