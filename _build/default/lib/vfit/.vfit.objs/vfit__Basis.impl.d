lib/vfit/basis.ml: Array Cx Float Linalg List Rmat
