(** Time-domain simulation of descriptor systems.

    Three fixed-step implicit integrators:
    - {!Trapezoidal} (default): 2nd order, A-stable, no numerical
      damping — the circuit-simulator workhorse.  Ringing-prone on
      descriptor constraints, so the first step is backward Euler and
      the initial state is projected onto the algebraic constraints.
    - {!Backward_euler}: 1st order, L-stable, damps everything.
    - {!Bdf2}: 2nd order, L-stable (Gear's method) — best of both for
      stiff macromodels.

    This is what a circuit simulator does with a fitted macromodel, and
    it is how the [transient] example validates models beyond the
    frequency domain. *)

type method_ = Trapezoidal | Backward_euler | Bdf2

type result = {
  times : float array;         (** k+1 instants, starting at 0 *)
  outputs : Linalg.Cmat.t;     (** p x (k+1): column k is y(t_k) *)
}

(** [simulate ?method_ sys ~input ~dt ~steps] integrates from
    [x(0) = 0] (projected onto the algebraic constraints when [E] is
    singular).  [input t] must return an [m x 1] vector.  Raises
    [Invalid_argument] if an integrator pencil is singular or on bad
    arguments. *)
val simulate :
  ?method_:method_ ->
  Descriptor.t -> input:(float -> Linalg.Cmat.t) -> dt:float -> steps:int -> result

(** [step_response sys ~port ~dt ~steps] applies a unit step on input
    [port] (0-based) and zero elsewhere. *)
val step_response :
  ?method_:method_ -> Descriptor.t -> port:int -> dt:float -> steps:int -> result

(** Scalar stimulus shapes, to be lifted onto a port with {!on_port}. *)
module Waveform : sig
  (** Unit step at [t0] (default 0). *)
  val step : ?t0:float -> ?amplitude:float -> unit -> float -> float

  (** Trapezoidal pulse: rises linearly over [rise] starting at [t0],
      holds for [width], falls over [fall] (default [= rise]). *)
  val pulse :
    ?t0:float -> rise:float -> width:float -> ?fall:float ->
    ?amplitude:float -> unit -> float -> float

  (** Saturating ramp: linear up to [amplitude] at [t0 + rise]. *)
  val ramp : ?t0:float -> rise:float -> ?amplitude:float -> unit -> float -> float

  val sine : freq:float -> ?amplitude:float -> ?phase:float -> unit -> float -> float

  (** Seeded pseudo-random bit stream with the given bit period and
      rise/fall time — the standard eye-diagram stimulus. *)
  val prbs :
    seed:int -> bit_period:float -> rise:float -> ?amplitude:float -> unit ->
    float -> float

  (** [on_port ~ports ~port w] turns a scalar waveform into the
      [input] function expected by {!simulate} (zero on other ports). *)
  val on_port : ports:int -> port:int -> (float -> float) -> float -> Linalg.Cmat.t
end
