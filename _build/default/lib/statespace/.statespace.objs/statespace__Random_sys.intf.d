lib/statespace/random_sys.mli: Descriptor
