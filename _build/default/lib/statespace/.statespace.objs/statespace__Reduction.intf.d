lib/statespace/reduction.mli: Descriptor
