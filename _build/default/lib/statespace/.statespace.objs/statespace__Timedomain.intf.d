lib/statespace/timedomain.mli: Descriptor Linalg
