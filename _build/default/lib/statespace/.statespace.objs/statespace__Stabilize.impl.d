lib/statespace/stabilize.ml: Array Cmat Cx Descriptor Eig Linalg Lu Stdlib
