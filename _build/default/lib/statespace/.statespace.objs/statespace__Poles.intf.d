lib/statespace/poles.mli: Descriptor Linalg
