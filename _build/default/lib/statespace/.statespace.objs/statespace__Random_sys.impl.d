lib/statespace/random_sys.ml: Cmat Cx Descriptor Float Linalg Rng Stdlib
