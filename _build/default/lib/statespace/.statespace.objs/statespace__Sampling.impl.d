lib/statespace/sampling.ml: Array Cmat Cx Descriptor Float Linalg Stdlib
