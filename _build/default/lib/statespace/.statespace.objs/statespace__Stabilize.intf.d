lib/statespace/stabilize.mli: Descriptor
