lib/statespace/sampling.mli: Descriptor Linalg
