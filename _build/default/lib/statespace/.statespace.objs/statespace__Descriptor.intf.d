lib/statespace/descriptor.mli: Format Linalg
