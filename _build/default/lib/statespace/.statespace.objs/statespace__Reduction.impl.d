lib/statespace/reduction.ml: Array Cmat Cx Descriptor Linalg Lu Lyapunov Stdlib Svd
