lib/statespace/poles.ml: Array Cmat Cx Descriptor Eig Linalg List Lu Stdlib
