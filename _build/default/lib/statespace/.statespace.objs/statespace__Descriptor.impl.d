lib/statespace/descriptor.ml: Array Cmat Cx Float Format Linalg List Lu Printf Stdlib String Svd
