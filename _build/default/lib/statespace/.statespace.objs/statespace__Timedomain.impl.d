lib/statespace/timedomain.ml: Array Cmat Cx Descriptor Float Lazy Linalg Lu Option Printf Rng
