open Linalg

let finite_poles ?(infinite_tol = 1e8) sys =
  let open Descriptor in
  let n = order sys in
  if n = 0 then [||]
  else begin
    (* Shift-and-invert: eigs of (s0 E - A)^{-1} E are 1/(s0 - pole);
       modes at infinity land at exactly 0 and are easy to filter.  A
       real shift away from the imaginary axis keeps the pencil regular
       for stable systems. *)
    let scale_a = Stdlib.max (Cmat.norm_fro sys.a) 1. in
    let scale_e = Stdlib.max (Cmat.norm_fro sys.e) 1e-300 in
    let s0 = Cx.of_float (scale_a /. scale_e) in
    let pencil = Cmat.sub (Cmat.scale s0 sys.e) sys.a in
    match Lu.factorize pencil with
    | exception Lu.Singular _ ->
      invalid_arg "Poles.finite_poles: pencil singular at the chosen shift"
    | f ->
      let m = Lu.solve f sys.e in
      let eigs = Eig.eigenvalues m in
      let poles = ref [] in
      Array.iter
        (fun mu ->
          (* pole = s0 - 1/mu; mu ~ 0 means a mode at infinity *)
          if Cx.abs mu > 1. /. (infinite_tol *. Cx.abs s0) then
            poles := Cx.sub s0 (Cx.inv mu) :: !poles)
        eigs;
      Array.of_list (List.rev !poles)
  end

let spectral_abscissa ?infinite_tol sys =
  let poles = finite_poles ?infinite_tol sys in
  Array.fold_left (fun acc p -> Stdlib.max acc (Cx.re p)) neg_infinity poles

let is_stable ?infinite_tol sys =
  let poles = finite_poles ?infinite_tol sys in
  Array.for_all (fun p -> Cx.re p < 0.) poles

let reflect_unstable poles =
  Array.map
    (fun (p : Cx.t) -> if p.Cx.re > 0. then Cx.make (-.p.Cx.re) p.Cx.im else p)
    poles
