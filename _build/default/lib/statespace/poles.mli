(** Pole analysis of descriptor models.

    For a Loewner-framework model [E] is typically nonsingular after the
    SVD projection; finite poles are the eigenvalues of [E^{-1} A].  When
    [E] is (nearly) singular the pencil has impulsive/infinite modes:
    these show up as huge eigenvalues and are filtered by
    [~infinite_tol]. *)

(** [finite_poles ?infinite_tol sys] returns the finite generalized
    eigenvalues of the pencil [(A, E)].  Eigenvalues of modulus larger
    than [infinite_tol * max(1, |A| / |E|)] are treated as modes at
    infinity and dropped (default tol [1e8]). *)
val finite_poles : ?infinite_tol:float -> Descriptor.t -> Linalg.Cx.t array

(** Largest real part over the finite poles ([neg_infinity] when none). *)
val spectral_abscissa : ?infinite_tol:float -> Descriptor.t -> float

(** A system is stable when every finite pole satisfies [Re < 0]. *)
val is_stable : ?infinite_tol:float -> Descriptor.t -> bool

(** [reflect_unstable poles] flips any pole with positive real part into
    the left half plane (the standard vector-fitting safeguard). *)
val reflect_unstable : Linalg.Cx.t array -> Linalg.Cx.t array
