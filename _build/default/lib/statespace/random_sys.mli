(** Reproducible random stable test systems.

    The paper's Example 1 samples an "order-150 system with 30 ports"; its
    origin is unspecified, so we generate one with exactly controlled
    [order], port count and [rank D] — the only quantities Lemma 3.3 and
    Theorem 3.5 depend on.  Poles are placed stably (negative real parts)
    with resonant frequencies spread logarithmically across a band, so
    the frequency response is lively in the sampling range. *)

type spec = {
  order : int;          (** state dimension; >= 1 *)
  ports : int;          (** inputs = outputs = ports (MNA-style) *)
  rank_d : int;         (** rank of the direct-feedthrough term *)
  freq_lo : float;      (** lower edge of the resonance band, Hz *)
  freq_hi : float;      (** upper edge of the resonance band, Hz *)
  damping : float;      (** pole damping ratio scale, e.g. 0.05 *)
  seed : int;
}

val default_spec : spec

(** [generate spec] builds a real stable state-space system ([E = I]).
    Roughly half the states form complex-conjugate resonant pairs (stored
    as real 2x2 blocks); the rest are real poles.  [B], [C] are dense
    random, [D] is a random product of rank [rank_d].  *)
val generate : spec -> Descriptor.t

(** The paper's Example 1 system: order 150, 30 ports, full-rank D,
    resonances spread over 10 Hz – 100 kHz. *)
val example1 : ?seed:int -> unit -> Descriptor.t
