open Linalg

type method_ = Trapezoidal | Backward_euler | Bdf2

type result = { times : float array; outputs : Cmat.t }

let factor_or name m =
  match Lu.factorize m with
  | exception Lu.Singular _ ->
    invalid_arg (Printf.sprintf "Timedomain.simulate: %s pencil is singular" name)
  | f -> f

let simulate ?(method_ = Trapezoidal) sys ~input ~dt ~steps =
  if dt <= 0. then invalid_arg "Timedomain.simulate: dt must be positive";
  if steps < 1 then invalid_arg "Timedomain.simulate: steps must be >= 1";
  let open Descriptor in
  let n = order sys and m = inputs sys and p = outputs sys in
  let check_input u t =
    if Cmat.dims u <> (m, 1) then
      invalid_arg
        (Printf.sprintf "Timedomain.simulate: input at t=%g is %dx%d, expected %dx1"
           t (Cmat.rows u) (Cmat.cols u) m);
    u
  in
  (* Backward-Euler operator, used as the startup step for the
     multistep/undamped methods: L-stable, so it also projects
     inconsistent descriptor initial conditions onto the constraints. *)
  let be_factor =
    factor_or "backward-Euler"
      (Cmat.sub sys.e (Cmat.scale (Cx.of_float dt) sys.a))
  in
  let be_step x u_next =
    let rhs =
      Cmat.add (Cmat.mul sys.e x)
        (Cmat.scale (Cx.of_float dt) (Cmat.mul sys.b u_next))
    in
    Lu.solve be_factor rhs
  in
  let times = Array.init (steps + 1) (fun k -> float_of_int k *. dt) in
  let outputs = Cmat.zeros p (steps + 1) in
  let x = ref (Cmat.zeros n 1) in
  let x_prev = ref (Cmat.zeros n 1) in
  let u = ref (check_input (input 0.) 0.) in
  (* Consistent initialization: with singular E the algebraic states must
     satisfy their constraint at t = 0+ (a step input "jumps" through the
     feedthrough path).  A vanishing-step backward-Euler solve leaves the
     dynamic states untouched (up to O(delta)) and projects the algebraic
     ones onto the constraint. *)
  let delta = dt *. 1e-6 in
  (match Lu.factorize (Cmat.sub sys.e (Cmat.scale (Cx.of_float delta) sys.a)) with
   | exception Lu.Singular _ -> ()  (* fall back to the raw initial state *)
   | f ->
     let rhs =
       Cmat.add (Cmat.mul sys.e !x)
         (Cmat.scale (Cx.of_float delta) (Cmat.mul sys.b !u))
     in
     x := Lu.solve f rhs);
  let emit k u_k =
    let y = Cmat.add (Cmat.mul sys.c !x) (Cmat.mul sys.d u_k) in
    Cmat.set_sub outputs ~r:0 ~c:k y
  in
  emit 0 !u;
  (* method-specific operators *)
  let half = Cx.of_float (dt /. 2.) in
  let trap_factor =
    lazy (factor_or "trapezoidal" (Cmat.sub sys.e (Cmat.scale half sys.a)))
  in
  let trap_rhs_mat = lazy (Cmat.add sys.e (Cmat.scale half sys.a)) in
  let trap_half_b = lazy (Cmat.scale half sys.b) in
  let bdf2_factor =
    lazy
      (factor_or "BDF2"
         (Cmat.sub
            (Cmat.scale_float (3. /. (2. *. dt)) sys.e)
            sys.a))
  in
  for k = 1 to steps do
    let t = times.(k) in
    let u_next = check_input (input t) t in
    let x_new =
      match method_ with
      | Backward_euler -> be_step !x u_next
      | Trapezoidal ->
        if k = 1 then be_step !x u_next
        else begin
          let rhs =
            Cmat.add
              (Cmat.mul (Lazy.force trap_rhs_mat) !x)
              (Cmat.mul (Lazy.force trap_half_b) (Cmat.add !u u_next))
          in
          Lu.solve (Lazy.force trap_factor) rhs
        end
      | Bdf2 ->
        if k = 1 then be_step !x u_next
        else begin
          (* (3/(2dt) E - A) x+ = E (4 x - x-) / (2dt) + B u+ *)
          let hist =
            Cmat.scale_float (1. /. (2. *. dt))
              (Cmat.mul sys.e
                 (Cmat.sub (Cmat.scale_float 4. !x) !x_prev))
          in
          let rhs = Cmat.add hist (Cmat.mul sys.b u_next) in
          Lu.solve (Lazy.force bdf2_factor) rhs
        end
    in
    x_prev := !x;
    x := x_new;
    u := u_next;
    emit k !u
  done;
  { times; outputs }

let step_response ?method_ sys ~port ~dt ~steps =
  let m = Descriptor.inputs sys in
  if port < 0 || port >= m then invalid_arg "Timedomain.step_response: bad port";
  let u = Cmat.init m 1 (fun i _ -> if i = port then Cx.one else Cx.zero) in
  simulate ?method_ sys ~input:(fun _ -> u) ~dt ~steps

module Waveform = struct
  let step ?(t0 = 0.) ?(amplitude = 1.) () t = if t >= t0 then amplitude else 0.

  let edge ~start ~duration t =
    if duration <= 0. then if t >= start then 1. else 0.
    else if t <= start then 0.
    else if t >= start +. duration then 1.
    else (t -. start) /. duration

  let pulse ?(t0 = 0.) ~rise ~width ?fall ?(amplitude = 1.) () t =
    let fall = Option.value fall ~default:rise in
    let up = edge ~start:t0 ~duration:rise t in
    let down = edge ~start:(t0 +. rise +. width) ~duration:fall t in
    amplitude *. (up -. down)

  let ramp ?(t0 = 0.) ~rise ?(amplitude = 1.) () t =
    amplitude *. edge ~start:t0 ~duration:rise t

  let sine ~freq ?(amplitude = 1.) ?(phase = 0.) () t =
    amplitude *. sin ((2. *. Float.pi *. freq *. t) +. phase)

  let prbs ~seed ~bit_period ~rise ?(amplitude = 1.) () =
    if bit_period <= 0. then invalid_arg "Waveform.prbs: bit_period must be positive";
    (* deterministic bit for index k, via a tiny hash of (seed, k) *)
    let bit k =
      if k < 0 then 0.
      else begin
        let rng = Rng.create ((seed * 1_000_003) + k) in
        if Rng.int rng 2 = 1 then 1. else 0.
      end
    in
    fun t ->
      let k = int_of_float (Float.floor (t /. bit_period)) in
      let b_prev = bit (k - 1) and b = bit k in
      let frac = t -. (float_of_int k *. bit_period) in
      let level =
        if rise <= 0. || frac >= rise then b
        else b_prev +. ((b -. b_prev) *. (frac /. rise))
      in
      amplitude *. level

  let on_port ~ports ~port w =
    if port < 0 || port >= ports then invalid_arg "Waveform.on_port: bad port";
    fun t ->
      Cmat.init ports 1 (fun i _ ->
          if i = port then Cx.of_float (w t) else Cx.zero)
end
