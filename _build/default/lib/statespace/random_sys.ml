open Linalg

type spec = {
  order : int;
  ports : int;
  rank_d : int;
  freq_lo : float;
  freq_hi : float;
  damping : float;
  seed : int;
}

let default_spec =
  { order = 20; ports = 2; rank_d = 2; freq_lo = 10.; freq_hi = 1e5;
    damping = 0.05; seed = 0 }

let generate spec =
  if spec.order < 1 then invalid_arg "Random_sys.generate: order must be >= 1";
  if spec.ports < 1 then invalid_arg "Random_sys.generate: ports must be >= 1";
  if spec.rank_d < 0 || spec.rank_d > spec.ports then
    invalid_arg "Random_sys.generate: rank_d must be in [0, ports]";
  let rng = Rng.create spec.seed in
  let n = spec.order and p = spec.ports in
  let npairs = n / 2 in
  let nreal = n - (2 * npairs) in
  (* Resonant frequencies spread logarithmically across the band, with a
     little jitter so no two systems share poles. *)
  let log_lo = log10 spec.freq_lo and log_hi = log10 spec.freq_hi in
  let resonance k count =
    let t = if count <= 1 then 0.5 else float_of_int k /. float_of_int (count - 1) in
    let jitter = 0.02 *. Rng.gaussian rng in
    10. ** (log_lo +. ((log_hi -. log_lo) *. t) +. jitter)
  in
  let a = Cmat.zeros n n in
  for k = 0 to npairs - 1 do
    let w = 2. *. Float.pi *. resonance k npairs in
    let zeta = spec.damping *. (0.5 +. Rng.uniform rng) in
    let i = 2 * k in
    Cmat.set a i i (Cx.of_float (-.zeta *. w));
    Cmat.set a i (i + 1) (Cx.of_float w);
    Cmat.set a (i + 1) i (Cx.of_float (-.w));
    Cmat.set a (i + 1) (i + 1) (Cx.of_float (-.zeta *. w))
  done;
  for k = 0 to nreal - 1 do
    let w = 2. *. Float.pi *. resonance k (Stdlib.max nreal 1) in
    let i = (2 * npairs) + k in
    Cmat.set a i i (Cx.of_float (-.w))
  done;
  let b = Cmat.random_real rng n p in
  let c = Cmat.random_real rng p n in
  let d =
    if spec.rank_d = 0 then Cmat.zeros p p
    else begin
      let d1 = Cmat.random_real rng p spec.rank_d in
      let d2 = Cmat.random_real rng spec.rank_d p in
      Cmat.scale_float (1. /. sqrt (float_of_int spec.rank_d)) (Cmat.mul d1 d2)
    end
  in
  Descriptor.of_state_space ~a ~b ~c ~d

let example1 ?(seed = 2010) () =
  generate
    { order = 150; ports = 30; rank_d = 30; freq_lo = 10.; freq_hi = 1e5;
      damping = 0.05; seed }
