open Linalg

type result = {
  model : Descriptor.t;
  hankel : float array;
  retained : int;
  error_bound : float;
}

(* Hermitian-PSD square root factor via SVD: M = U diag(s) U* -> factor
   L = U diag(sqrt s).  Robust to semidefiniteness, unlike Cholesky. *)
let psd_factor m =
  let d = Svd.decompose m in
  let k = Array.length d.Svd.sigma in
  Cmat.init (Cmat.rows m) k (fun i jcol ->
      Cx.scale (sqrt (Stdlib.max d.Svd.sigma.(jcol) 0.)) (Cmat.get d.Svd.u i jcol))

let balanced_truncation ?(rtol = 1e-8) ?order sys =
  let target = order in
  if Descriptor.order sys = 0 then invalid_arg "Reduction: empty model";
  (* eliminate any algebraic part, then absorb the nonsingular E:
     A' = E^{-1} A, B' = E^{-1} B *)
  let sys = Descriptor.to_proper sys in
  let a', b' =
    match Lu.factorize sys.Descriptor.e with
    | exception Lu.Singular _ ->
      invalid_arg "Reduction.balanced_truncation: E singular after index reduction"
    | f -> (Lu.solve f sys.Descriptor.a, Lu.solve f sys.Descriptor.b)
  in
  (* Gramians: A'P + PA'* + B'B'* = 0 ;  A'*Q + QA' + C*C = 0 *)
  let p = Lyapunov.solve ~a:a' ~q:(Cmat.mul b' (Cmat.ctranspose b')) in
  let q =
    Lyapunov.solve ~a:(Cmat.ctranspose a')
      ~q:(Cmat.mul (Cmat.ctranspose sys.Descriptor.c) sys.Descriptor.c)
  in
  let lp = psd_factor p in
  let lq = psd_factor q in
  (* Hankel singular values: svd of Lq* Lp *)
  let core = Cmat.mul_cn lq lp in
  let d = Svd.decompose core in
  let hankel = d.Svd.sigma in
  let total = Array.length hankel in
  let retained =
    match target with
    | Some r ->
      if r < 1 then invalid_arg "Reduction: order must be >= 1";
      Stdlib.min r total
    | None ->
      if total = 0 || hankel.(0) = 0. then 1
      else begin
        let thresh = rtol *. hankel.(0) in
        let count = ref 0 in
        Array.iter (fun s -> if s > thresh then incr count) hankel;
        Stdlib.max 1 !count
      end
  in
  (* balancing projection (square-root method):
     T = Lp V S^{-1/2},  Ti = S^{-1/2} U* Lq* *)
  let sqrt_inv = Array.init retained (fun i -> 1. /. sqrt hankel.(i)) in
  let vr =
    Cmat.init (Cmat.rows d.Svd.v) retained (fun i jcol ->
        Cx.scale sqrt_inv.(jcol) (Cmat.get d.Svd.v i jcol))
  in
  let ur =
    Cmat.init (Cmat.rows d.Svd.u) retained (fun i jcol ->
        Cx.scale sqrt_inv.(jcol) (Cmat.get d.Svd.u i jcol))
  in
  let t = Cmat.mul lp vr in
  let ti = Cmat.mul_cn ur (Cmat.ctranspose lq) in
  let a_r = Cmat.mul ti (Cmat.mul a' t) in
  let b_r = Cmat.mul ti b' in
  let c_r = Cmat.mul sys.Descriptor.c t in
  let model = Descriptor.of_state_space ~a:a_r ~b:b_r ~c:c_r ~d:sys.Descriptor.d in
  let error_bound =
    let acc = ref 0. in
    for i = retained to total - 1 do
      acc := !acc +. hankel.(i)
    done;
    2. *. !acc
  in
  { model; hankel; retained; error_bound }
