(** Balanced truncation — Gramian-based model order reduction.

    A fitted macromodel often carries more states than its responses
    warrant (rank decisions under noise are conservative).  Balanced
    truncation computes the controllability and observability Gramians,
    transforms the model so both equal [diag(hankel)], and discards the
    states with small Hankel singular values.  The classic twice-the-tail
    H-infinity error bound applies:
    [|H - H_r|_inf <= 2 * sum_{i>r} hankel_i].

    Requires a *stable* model with (numerically) invertible [E]; the
    implicit [E^{-1}] is absorbed before the Gramian solves.  Models
    whose [E] is structurally singular (noise-free Loewner models with a
    feedthrough encoded as modes at infinity) are rejected — reduce the
    proper part or refit with a rank tolerance. *)

type result = {
  model : Descriptor.t;       (** reduced model, [E = I] *)
  hankel : float array;       (** all Hankel singular values, descending *)
  retained : int;
  error_bound : float;        (** [2 * sum of the discarded hankel values] *)
}

(** [balanced_truncation ?rtol ?order sys] keeps [order] states when
    given, otherwise every Hankel value above [rtol * hankel.(0)]
    (default [rtol = 1e-8]).

    Raises [Invalid_argument] when [E] is numerically singular and
    {!Linalg.Lyapunov.Not_stable} when the model is not asymptotically
    stable. *)
val balanced_truncation :
  ?rtol:float -> ?order:int -> Descriptor.t -> result
