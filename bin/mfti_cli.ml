(* mfti: command-line macromodeling tool.

   Subcommands:
     fit      fit a Touchstone file with MFTI / VFTI / recursive MFTI
     engine   drive the staged fitting engine, printing per-stage timings
     gen      generate a synthetic workload (PDN or RLC ladder) as Touchstone
     compare  run every algorithm on a Touchstone file and print a table
     info     summarize a Touchstone file
     pack     fit and write a binary model artifact (.mfti)
     inspect  print a packed artifact's metadata (checksum-verified)
     serve    answer eval-grid queries over stdio or a Unix socket
     fit-stream  stream a Touchstone file into a server-resident fit
                 session in batches and finalize into the model store

   Examples:
     mfti gen pdn --ports 8 --out board.s8p
     mfti fit board.s8p --algorithm mfti --width 2
     mfti pack board.s8p --out models/board.mfti
     mfti serve --root models *)

open Statespace
open Mfti
open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared arguments *)

let touchstone_arg =
  let doc = "Touchstone (.sNp) file with sampled network parameters." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let width_arg =
  let doc = "Tangential block width t (0 = full: t = port count)." in
  Arg.(value & opt int 0 & info [ "width"; "t" ] ~docv:"T" ~doc)

let rank_tol_arg =
  let doc =
    "Relative singular-value cutoff for the model order (0 = automatic \
     gap detection, for noise-free data)."
  in
  Arg.(value & opt float 0. & info [ "rank-tol" ] ~docv:"TOL" ~doc)

let seed_arg =
  let doc = "Random seed (directions, placement, noise)." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let flo_arg =
  let doc = "Lowest frequency (Hz)." in
  Arg.(value & opt float 1e6 & info [ "f-lo" ] ~docv:"HZ" ~doc)

let fhi_arg =
  let doc = "Highest frequency (Hz)." in
  Arg.(value & opt float 3e9 & info [ "f-hi" ] ~docv:"HZ" ~doc)

let validation ~context message =
  Linalg.Mfti_error.raise_error
    (Linalg.Mfti_error.Validation { context; message })

let is_netlist path = Filename.check_suffix path ".ckt"

let policy_arg =
  let lenient =
    let doc =
      "Best-effort recovery of dirty Touchstone input: lines with \
       unparseable tokens, truncated trailing records, non-finite values \
       and duplicate frequency points are dropped (reported on stderr) \
       instead of rejecting the file."
    in
    (Rf.Touchstone.Lenient, Arg.info [ "lenient" ] ~doc)
  in
  let strict =
    let doc = "Reject dirty Touchstone input with a parse error (default)." in
    (Rf.Touchstone.Strict, Arg.info [ "strict" ] ~doc)
  in
  Arg.(value & vflag Rf.Touchstone.Strict [ lenient; strict ])

(* Errors anywhere below surface as [Mfti_error.Error]; this is the one
   place they are rendered and mapped to a sysexits-style process exit
   code (64 usage, 65 data, 70 numerical). *)
let guarded f =
  match f () with
  | code -> code
  | exception Linalg.Mfti_error.Error e ->
    Printf.eprintf "mfti: %s\n" (Linalg.Mfti_error.to_string e);
    Linalg.Mfti_error.exit_code e
  | exception Rf.Touchstone.Parse_error msg ->
    Printf.eprintf "mfti: parse error: %s\n" msg;
    65

let load ?(policy = Rf.Touchstone.Strict) path =
  let data =
    match Rf.Touchstone.read_file_result ~policy path with
    | Ok data -> data
    | Error e -> Linalg.Mfti_error.raise_error e
  in
  if data.Rf.Touchstone.parameter <> Rf.Touchstone.S then
    Printf.eprintf "note: treating %s data as generic frequency response\n"
      (match data.Rf.Touchstone.parameter with
       | Rf.Touchstone.Y -> "Y" | Rf.Touchstone.Z -> "Z" | Rf.Touchstone.S -> "S");
  data

let print_diagnostics diag =
  Printf.eprintf "diagnostics: %s\n%!" (Linalg.Diag.summary diag)

let weight_of_width ~samples w =
  if w = 0 then Tangential.Full
  else begin
    let p, m = Sampling.port_dims samples in
    ignore p;
    ignore m;
    Tangential.Uniform w
  end

let rank_rule_of_tol tol =
  if tol <= 0. then Svd_reduce.Gap else Svd_reduce.Tol tol

let svd_arg =
  let b =
    Arg.enum
      [ ("auto", Svd_reduce.Auto); ("randomized", Svd_reduce.Randomized);
        ("jacobi", Svd_reduce.Jacobi); ("gk", Svd_reduce.Gk) ]
  in
  let doc =
    "SVD engine for the reduce stage: $(b,auto) (randomized range finder \
     above a pencil-size cutoff, exact below), $(b,randomized) (certified \
     Gaussian sketch with exact fallback), $(b,jacobi) (blocked parallel \
     one-sided Jacobi) or $(b,gk) (Golub-Kahan)."
  in
  Arg.(value & opt b Svd_reduce.default_backend
       & info [ "svd" ] ~docv:"BACKEND" ~doc)

let certify_arg =
  let m =
    Arg.enum
      [ ("repair", Certify.Repair); ("check", Certify.Check);
        ("off", Certify.Off) ]
  in
  let doc =
    "Certify the fitted model: $(b,repair) enforces stability and \
     passivity (pole reflection + perturbative contraction; incurable \
     models are refused with a typed error), $(b,check) records the \
     stability/passivity verdict without modifying the model, $(b,off) \
     skips certification.  A bare $(b,--certify) means $(b,repair)."
  in
  Arg.(value & opt ~vopt:Certify.Repair m Certify.Off
       & info [ "certify" ] ~docv:"MODE" ~doc)

let print_certificate = function
  | None -> ()
  | Some c -> Printf.printf "certificate: %s\n" (Certify.Certificate.to_string c)

let sample_freqs samples = Array.map (fun s -> s.Sampling.freq) samples

(* ------------------------------------------------------------------ *)
(* fit *)

let algorithm_arg =
  let alg =
    Arg.enum
      [ ("mfti", `Mfti); ("vfti", `Vfti); ("mfti2", `Mfti2); ("vf", `Vf) ]
  in
  let doc = "Fitting algorithm: $(b,mfti) (Algorithm 1), $(b,vfti) \
             (vector-format baseline), $(b,mfti2) (recursive Algorithm 2), \
             or $(b,vf) (vector fitting)." in
  Arg.(value & opt alg `Mfti & info [ "algorithm"; "a" ] ~docv:"ALG" ~doc)

let poles_arg =
  let doc = "Pole count for vector fitting." in
  Arg.(value & opt int 50 & info [ "poles" ] ~docv:"N" ~doc)

let save_model_arg =
  let doc = "Write the fitted state-space model to this file              (mfti-descriptor-v1 text format; reload with              Statespace.Descriptor.load)." in
  Arg.(value & opt (some string) None & info [ "save-model" ] ~docv:"FILE" ~doc)

let plot_arg =
  let doc = "Write an SVG of the per-frequency relative fit error." in
  Arg.(value & opt (some string) None & info [ "plot" ] ~docv:"FILE" ~doc)

let symmetrize_arg =
  let doc = "Symmetrize the data ((S + S^T)/2) before fitting — noise              reduction for reciprocal devices." in
  Arg.(value & flag & info [ "symmetrize" ] ~doc)

let run_fit path policy algorithm width rank_tol seed poles save_model plot
    symmetrize svd_backend certify_mode =
  guarded @@ fun () ->
  let load_diag = Linalg.Diag.create () in
  let data = Linalg.Diag.using load_diag (fun () -> load ~policy path) in
  List.iter
    (fun (ev : Linalg.Diag.event) ->
      Printf.eprintf "input recovery [%s]: %s\n" ev.Linalg.Diag.site
        ev.Linalg.Diag.detail)
    (Linalg.Diag.events load_diag);
  let samples = Tangential.trim_even data.Rf.Touchstone.samples in
  let samples = if symmetrize then Sampling.symmetrize samples else samples in
  let rank_rule = rank_rule_of_tol rank_tol in
  let directions = Direction.Orthonormal seed in
  let describe name model rank =
    Printf.printf "%s\n" (Metrics.report ~name model samples);
    Printf.printf "retained order: %d; stable: %b; real: %b\n" rank
      (Poles.is_stable model) (Descriptor.is_real model);
    if data.Rf.Touchstone.parameter = Rf.Touchstone.S then
      match Rf.Passivity.check model with
      | Rf.Passivity.Passive -> Printf.printf "passivity: passive\n"
      | Rf.Passivity.Feedthrough_violation sd ->
        Printf.printf "passivity: VIOLATED at infinite frequency (sigma D = %.4f)\n" sd
      | Rf.Passivity.Violations fs ->
        Printf.printf "passivity: sigma_max(S) crosses 1 at %d frequencies (first %.4g Hz)\n"
          (List.length fs) (List.hd fs)
      | exception Invalid_argument msg ->
        Printf.printf "passivity: not checkable (%s)\n" msg
  in
  let post_process name model =
    (match save_model with
     | None -> ()
     | Some file ->
       Descriptor.save file model;
       Printf.printf "saved model -> %s\n" file);
    match plot with
    | None -> ()
    | Some file ->
      let errs = Metrics.err_vector model samples in
      let points =
        Array.mapi (fun i e -> (samples.(i).Sampling.freq, e)) errs
      in
      Plot.Svg.write_file file
        ~title:(name ^ " fit: per-frequency relative error")
        ~xlabel:"frequency (Hz)" ~ylabel:"|H - S| / |S|"
        ~xaxis:Plot.Svg.Log ~yaxis:Plot.Svg.Log
        [ { Plot.Svg.label = name; points } ];
      Printf.printf "wrote error plot -> %s\n" file
  in
  (match algorithm with
   | `Vf ->
     let options = { Vfit.Vf.default_options with n_poles = poles } in
     let model, _ = Vfit.Vf.fit ~options samples in
     Printf.printf "VF: order %d, ERR %.3e\n" (Vfit.Vf.order model)
       (Vfit.Vf.err model samples);
     let d = Vfit.Vf.to_descriptor model in
     let d =
       match certify_mode with
       | Certify.Off -> d
       | mode ->
         (match
            Certify.run ~options:{ Certify.default_options with mode }
              ~freqs:(sample_freqs samples) d
          with
          | Ok (d, cert) ->
            print_certificate cert;
            d
          | Error e -> Linalg.Mfti_error.raise_error e)
     in
     post_process "VF" d
   | (`Mfti | `Vfti | `Mfti2) as alg ->
     (* the three Loewner paths are strategies over the same engine *)
     let name, strategy, options =
       match alg with
       | `Mfti ->
         ( "MFTI", Engine.Direct,
           { Engine.default_options with
             weight = weight_of_width ~samples width; rank_rule; directions;
             svd = svd_backend } )
       | `Vfti ->
         ( "VFTI", Engine.Vector,
           { Engine.default_options with rank_rule; directions;
             svd = svd_backend } )
       | `Mfti2 ->
         ( "MFTI-2", Engine.Recursive Engine.Incremental,
           { Engine.default_recursive_options with
             weight = (if width = 0 then Tangential.Uniform 2
                       else Tangential.Uniform width);
             rank_rule; directions; svd = svd_backend } )
     in
     let options = { options with Engine.certify = certify_mode } in
     let r = Engine.fit ~options ~strategy samples in
     (match alg with
      | `Mfti2 ->
        Printf.printf "recursive MFTI: used %d/%d units in %d iterations\n"
          r.Engine.selected_units r.Engine.total_units r.Engine.iterations
      | `Mfti | `Vfti -> ());
     describe name r.Engine.model r.Engine.rank;
     print_certificate r.Engine.certificate;
     print_diagnostics r.Engine.diagnostics;
     post_process name r.Engine.model);
  0

let fit_cmd =
  let info = Cmd.info "fit" ~doc:"Fit a macromodel to sampled data." in
  Cmd.v info
    Term.(const run_fit $ touchstone_arg $ policy_arg $ algorithm_arg
          $ width_arg $ rank_tol_arg $ seed_arg $ poles_arg $ save_model_arg
          $ plot_arg $ symmetrize_arg $ svd_arg $ certify_arg)

(* ------------------------------------------------------------------ *)
(* engine: drive the staged pipeline explicitly, with per-stage timing *)

let engine_input_arg =
  let doc =
    "Input: Touchstone (.sNp) sampled data for the dense strategies, or \
     an MNA netlist (.ckt, from $(b,mfti gen --netlist)) for the sparse \
     krylov strategies."
  in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let strategy_arg =
  let s =
    Arg.enum
      [ ("direct", `Direct); ("vector", `Vector);
        ("incremental", `Incremental); ("batch", `Batch);
        ("krylov", `Krylov); ("krylov+mfti", `KrylovMfti) ]
  in
  let doc =
    "Engine strategy: $(b,direct) (Algorithm 1), $(b,vector) (VFTI), \
     $(b,incremental) (recursive Algorithm 2 with incremental Loewner \
     assembly), $(b,batch) (recursive over the full pencil), \
     $(b,krylov) (sparse tangential rational Krylov pre-reduction of an \
     MNA netlist) or $(b,krylov+mfti) (Krylov pre-reduction, then the \
     direct MFTI engine on samples of the reduced model)."
  in
  Arg.(value & opt s `Incremental & info [ "strategy" ] ~docv:"STRAT" ~doc)

let shifts_arg =
  let doc =
    "Initial log-spaced interpolation shifts for the krylov strategies."
  in
  Arg.(value & opt int 8 & info [ "shifts" ] ~docv:"N" ~doc)

let krylov_order_arg =
  let doc = "Hard cap on the Krylov-reduced order." in
  Arg.(value & opt int 240 & info [ "krylov-order" ] ~docv:"N" ~doc)

let krylov_tol_arg =
  let doc =
    "Hold-out relative-error target for the adaptive shift rounds."
  in
  Arg.(value & opt float 1e-6 & info [ "krylov-tol" ] ~docv:"TOL" ~doc)

let z0_arg =
  let doc =
    "Reference impedance (ohms) for the Z-to-S conversion of a reduced \
     netlist model."
  in
  Arg.(value & opt float 50. & info [ "z0" ] ~docv:"OHMS" ~doc)

let engine_pack_arg =
  let doc = "Also write the final model as a packed artifact (.mfti)." in
  Arg.(value & opt (some string) None & info [ "pack" ] ~docv:"FILE" ~doc)

let pack_artifact ~path ~fit_err ~out model =
  let name = Filename.remove_extension (Filename.basename path) in
  let artifact = Serve.Artifact.v ~name ~fit_err model in
  Serve.Artifact.save out artifact;
  Printf.printf "packed %s -> %s (order %d, %dx%d ports)\n" name out
    (Engine.Model.order model) (Engine.Model.outputs model)
    (Engine.Model.inputs model)

let batch_arg =
  let doc = "Units moved into the active set per recursion iteration." in
  Arg.(value & opt int 8 & info [ "batch" ] ~docv:"K0" ~doc)

let threshold_arg =
  let doc = "Mean relative held-out residual target for the recursion." in
  Arg.(value & opt float 1e-3 & info [ "threshold" ] ~docv:"TH" ~doc)

let max_iterations_arg =
  let doc = "Recursion iteration cap." in
  Arg.(value & opt int 64 & info [ "max-iterations" ] ~docv:"N" ~doc)

let probe_arg =
  let doc =
    "Score at most this many held-out units per iteration (0 = all)."
  in
  Arg.(value & opt int 0 & info [ "probe" ] ~docv:"N" ~doc)

let holdout_arg =
  let doc =
    "Hold out every Nth sample for error reporting (0 = fit and report \
     on all samples)."
  in
  Arg.(value & opt int 0 & info [ "holdout-every" ] ~docv:"N" ~doc)

(* krylov / krylov+mfti: sparse MNA netlist in, Engine.Model out — the
   certify / pack / serve stages downstream are strategy-blind. *)
let run_engine_krylov ~path ~strategy ~width ~rank_tol ~seed ~svd_backend
    ~certify_mode ~flo ~fhi ~shifts ~krylov_order ~krylov_tol ~z0 ~pack_out =
  let ok = function
    | Ok x -> x
    | Error e -> Linalg.Mfti_error.raise_error e
  in
  if not (is_netlist path) then
    validation ~context:"engine"
      (Printf.sprintf
         "strategy krylov reduces a sparse MNA netlist but %s is not a \
          .ckt file; generate one with `mfti gen pdn --grid RxC \
          --netlist FILE`" path);
  let circuit = ok (Rf.Netlist.load path) in
  Printf.printf "netlist: %d nodes, %d states, %d ports\n%!"
    (Rf.Mna.num_nodes circuit) (Rf.Mna.num_states circuit)
    (Rf.Mna.num_ports circuit);
  let sys = Krylov.of_mna circuit in
  let koptions =
    { Krylov.default_options with
      f_lo = flo; f_hi = fhi; shifts; max_order = krylov_order;
      tol = krylov_tol; z0 = Some z0 }
  in
  let diag = Linalg.Diag.create () in
  let model, kr =
    Linalg.Diag.using diag (fun () ->
        match strategy with
        | `Krylov ->
          let kr = ok (Krylov.reduce ~options:koptions sys) in
          let m =
            match certify_mode with
            | Certify.Off -> kr.Krylov.model
            | mode ->
              ok
                (Engine.Model.certify
                   ~options:{ Certify.default_options with mode }
                   ~freqs:(Sampling.logspace flo fhi 64) kr.Krylov.model)
          in
          (m, kr)
        | `KrylovMfti ->
          let fit_options =
            { Engine.default_options with
              weight =
                (if width = 0 then Tangential.Full
                 else Tangential.Uniform width);
              rank_rule = rank_rule_of_tol rank_tol;
              directions = Direction.Orthonormal seed;
              svd = svd_backend; certify = certify_mode }
          in
          ok (Krylov.fit_mfti ~options:koptions ~fit_options sys))
  in
  List.iter
    (fun (stage, dt) -> Printf.printf "krylov %-9s %9.4f s\n" stage dt)
    kr.Krylov.timings;
  Printf.printf "krylov: order %d from %d shifts, %d factorizations\n"
    kr.Krylov.order
    (Array.length kr.Krylov.shift_freqs)
    kr.Krylov.factorizations;
  Array.iteri
    (fun i e -> Printf.printf "round %d: hold-out err %.3e\n" (i + 1) e)
    kr.Krylov.history;
  (match strategy with
   | `KrylovMfti ->
     List.iter
       (fun (stage, dt) -> Printf.printf "stage %-9s %9.4f s\n" stage dt)
       (Engine.Model.timings model)
   | `Krylov -> ());
  Printf.printf "retained order: %d; stable: %b; real: %b\n"
    (Engine.Model.rank model) (Engine.Model.stable model)
    (Engine.Model.is_real model);
  print_certificate (Engine.Model.certificate model);
  print_diagnostics diag;
  (match pack_out with
   | None -> ()
   | Some out ->
     let h = kr.Krylov.history in
     let fit_err =
       if Array.length h > 0 then h.(Array.length h - 1) else Float.nan
     in
     pack_artifact ~path ~fit_err ~out model);
  0

let run_engine path policy strategy width rank_tol seed batch threshold
    max_iterations probe holdout_every svd_backend certify_mode flo fhi
    shifts krylov_order krylov_tol z0 pack_out =
  guarded @@ fun () ->
  match strategy with
  | (`Krylov | `KrylovMfti) as strategy ->
    run_engine_krylov ~path ~strategy ~width ~rank_tol ~seed ~svd_backend
      ~certify_mode ~flo ~fhi ~shifts ~krylov_order ~krylov_tol ~z0
      ~pack_out
  | (`Direct | `Vector | `Incremental | `Batch) as strategy ->
  if is_netlist path then
    validation ~context:"engine"
      "netlist (.ckt) input needs --strategy krylov or krylov+mfti; the \
       dense strategies fit sampled Touchstone data";
  let data = load ~policy path in
  let dataset = Dataset.of_samples data.Rf.Touchstone.samples in
  let dataset =
    if holdout_every > 0 then
      match Dataset.partition ~every:holdout_every dataset with
      | Ok d -> d
      | Error e -> Linalg.Mfti_error.raise_error e
    else dataset
  in
  let dataset = Dataset.trim_even dataset in
  let samples = Dataset.fit_samples dataset in
  let strategy =
    match strategy with
    | `Direct -> Engine.Direct
    | `Vector -> Engine.Vector
    | `Incremental -> Engine.Recursive Engine.Incremental
    | `Batch -> Engine.Recursive Engine.Batch
  in
  let base =
    match strategy with
    | Engine.Recursive _ -> Engine.default_recursive_options
    | Engine.Direct | Engine.Vector -> Engine.default_options
  in
  let options =
    { base with
      weight =
        (match strategy with
         | Engine.Recursive _ ->
           Tangential.Uniform (if width = 0 then 2 else width)
         | Engine.Direct | Engine.Vector -> weight_of_width ~samples width);
      rank_rule = rank_rule_of_tol rank_tol;
      directions = Direction.Orthonormal seed;
      svd = svd_backend;
      batch; threshold; max_iterations;
      probe = (if probe > 0 then Some probe else None);
      certify = certify_mode }
  in
  let ok = function
    | Ok x -> x
    | Error e -> Linalg.Mfti_error.raise_error e
  in
  let st = ok (Engine.ingest ~options ~strategy dataset) in
  ok (Engine.assemble st);
  ok (Engine.realify st);
  ok (Engine.reduce st);
  ok (Engine.certify st);
  let m = ok (Engine.model st) in
  List.iter
    (fun (stage, dt) -> Printf.printf "stage %-9s %9.4f s\n" stage dt)
    (Engine.Model.timings m);
  (match Engine.Model.stats m with
   | Some s when s.Engine.Model.iterations > 0 ->
     Printf.printf "units: %d/%d in %d iterations\n"
       s.Engine.Model.selected_units s.Engine.Model.total_units
       s.Engine.Model.iterations
   | _ -> ());
  let report_samples =
    if Dataset.holdout_size dataset > 0 then Dataset.holdout_samples dataset
    else samples
  in
  Printf.printf "%s\n"
    (Engine.Model.report ~name:"engine" m report_samples);
  Printf.printf "retained order: %d; stable: %b; real: %b\n"
    (Engine.Model.rank m) (Engine.Model.stable m) (Engine.Model.is_real m);
  print_certificate (Engine.Model.certificate m);
  print_diagnostics (Engine.Model.diagnostics m);
  (match pack_out with
   | None -> ()
   | Some out ->
     pack_artifact ~path ~fit_err:(Engine.Model.err m report_samples) ~out m);
  0

let engine_cmd =
  let info =
    Cmd.info "engine"
      ~doc:"Run the staged fitting engine with per-stage timings."
  in
  Cmd.v info
    Term.(const run_engine $ engine_input_arg $ policy_arg $ strategy_arg
          $ width_arg $ rank_tol_arg $ seed_arg $ batch_arg $ threshold_arg
          $ max_iterations_arg $ probe_arg $ holdout_arg $ svd_arg
          $ certify_arg $ flo_arg $ fhi_arg $ shifts_arg $ krylov_order_arg
          $ krylov_tol_arg $ z0_arg $ engine_pack_arg)

(* ------------------------------------------------------------------ *)
(* gen *)

let kind_arg =
  let kind = Arg.enum [ ("pdn", `Pdn); ("ladder", `Ladder) ] in
  let doc = "Workload kind: $(b,pdn) (power distribution network) or \
             $(b,ladder) (RLC transmission line)." in
  Arg.(required & pos 0 (some kind) None & info [] ~docv:"KIND" ~doc)

let out_arg =
  let doc = "Output Touchstone file (port count must match extension)." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let ports_arg =
  let doc = "Number of ports for the PDN." in
  Arg.(value & opt int 4 & info [ "ports" ] ~docv:"P" ~doc)

let points_arg =
  let doc = "Number of frequency points." in
  Arg.(value & opt int 100 & info [ "points"; "n" ] ~docv:"N" ~doc)

let noise_arg =
  let doc = "Relative measurement-noise level (e.g. 0.001 = -60 dB)." in
  Arg.(value & opt float 0. & info [ "noise" ] ~docv:"LEVEL" ~doc)

let grid_arg =
  let doc =
    "PDN plane grid as $(b,ROWSxCOLS) (e.g. $(b,316x316) for a \
     ~100k-node plane).  Planes beyond 2500 nodes use resistive \
     segments so the MNA order stays at the node count."
  in
  Arg.(value & opt (some string) None & info [ "grid" ] ~docv:"RxC" ~doc)

let nodes_arg =
  let doc =
    "Approximate PDN node budget; expands to the smallest square grid \
     with at least this many nodes."
  in
  Arg.(value & opt (some int) None & info [ "nodes" ] ~docv:"N" ~doc)

let decaps_arg =
  let doc =
    "Decoupling capacitors placed on the plane (default: half the port \
     count, at least 2)."
  in
  Arg.(value & opt (some int) None & info [ "decaps" ] ~docv:"D" ~doc)

let netlist_arg =
  let doc =
    "Write the PDN as an MNA netlist (.ckt) instead of (or in addition \
     to) sampling it; feed the file to \
     $(b,mfti engine --strategy krylov)."
  in
  Arg.(value & opt (some string) None & info [ "netlist" ] ~docv:"FILE" ~doc)

let parse_grid s =
  let fail () =
    validation ~context:"gen"
      (Printf.sprintf
         "--grid %s: expected ROWSxCOLS with both sides >= 2 (e.g. 64x64)"
         s)
  in
  match String.split_on_char 'x' (String.lowercase_ascii s) with
  | [ rows; cols ] ->
    (match
       (int_of_string_opt (String.trim rows),
        int_of_string_opt (String.trim cols))
     with
     | Some r, Some c when r >= 2 && c >= 2 -> (r, c)
     | Some _, Some _ -> fail ()
     | _ -> fail ())
  | _ -> fail ()

let write_workload ~out ~noise ~seed samples =
  let samples =
    if noise > 0. then Rf.Noise.add_relative ~seed ~level:noise samples
    else samples
  in
  let expected = Rf.Touchstone.ports_of_filename out in
  let actual, _ = Sampling.port_dims samples in
  if expected <> actual then
    validation ~context:"gen"
      (Printf.sprintf "workload has %d ports but %s implies %d" actual out
         expected);
  Rf.Touchstone.write_file out
    { Rf.Touchstone.parameter = Rf.Touchstone.S; z0 = 50.; samples }
    ~comment:"generated by mfti gen";
  Printf.printf "wrote %d samples, %d ports -> %s\n" (Array.length samples)
    actual out

let run_gen kind out ports points flo fhi noise seed grid nodes decaps
    netlist =
  guarded @@ fun () ->
  if out = None && netlist = None then
    validation ~context:"gen" "nothing to write: pass --out and/or --netlist";
  if ports <= 0 then
    validation ~context:"gen"
      (Printf.sprintf "--ports %d: need at least one port" ports);
  if out <> None && points <= 0 then
    validation ~context:"gen"
      (Printf.sprintf "--points %d: need at least one frequency point"
         points);
  (match nodes with
   | Some n when n <= 0 ->
     validation ~context:"gen"
       (Printf.sprintf "--nodes %d: the node budget must be positive" n)
   | _ -> ());
  (match decaps with
   | Some d when d < 0 ->
     validation ~context:"gen"
       (Printf.sprintf "--decaps %d: the decap count cannot be negative" d)
   | _ -> ());
  let dims =
    match (grid, nodes) with
    | Some _, Some _ ->
      validation ~context:"gen"
        "--grid and --nodes are two ways to size the same plane; pass one"
    | Some g, None -> Some (parse_grid g)
    | None, Some n ->
      let side =
        Stdlib.max 2 (int_of_float (ceil (sqrt (float_of_int n))))
      in
      Some (side, side)
    | None, None -> None
  in
  match kind with
  | `Ladder ->
    if dims <> None || netlist <> None then
      validation ~context:"gen"
        "--grid/--nodes/--netlist size a PDN plane; use `gen pdn`";
    let out = Option.get out in
    let freqs = Sampling.logspace flo fhi points in
    write_workload ~out ~noise ~seed
      (Rf.Ladder.scattering Rf.Ladder.default_spec ~z0:50. freqs);
    0
  | `Pdn ->
    let nx, ny =
      match dims with
      | Some (rows, cols) -> (cols, rows)
      | None ->
        let side =
          Stdlib.max 3
            (int_of_float (ceil (sqrt (float_of_int (2 * ports)))))
        in
        (side, side)
    in
    let node_count = nx * ny in
    let decaps =
      match decaps with Some d -> d | None -> Stdlib.max 2 (ports / 2)
    in
    if ports + decaps > node_count then
      validation ~context:"gen"
        (Printf.sprintf
           "%d ports + %d decaps need distinct grid nodes but the %dx%d \
            plane only has %d"
           ports decaps ny nx node_count);
    let spec =
      { Rf.Pdn.default_spec with
        nx; ny; ports; decaps; plane_rl = node_count <= 2500; seed }
    in
    (match netlist with
     | None -> ()
     | Some file ->
       let circuit = Rf.Pdn.build spec in
       Rf.Netlist.save file circuit;
       Printf.printf "wrote netlist: %d nodes, %d states, %d ports -> %s\n"
         (Rf.Mna.num_nodes circuit) (Rf.Mna.num_states circuit)
         (Rf.Mna.num_ports circuit) file);
    (match out with
     | None -> ()
     | Some out ->
       let freqs = Sampling.logspace flo fhi points in
       let samples =
         if node_count > 600 then
           Rf.Pdn.scattering_sparse spec ~z0:50. freqs
         else Rf.Pdn.scattering spec ~z0:50. freqs
       in
       write_workload ~out ~noise ~seed samples);
    0

let gen_cmd =
  let info =
    Cmd.info "gen"
      ~doc:
        "Generate a synthetic workload as Touchstone samples and/or an \
         MNA netlist."
  in
  Cmd.v info
    Term.(const run_gen $ kind_arg $ out_arg $ ports_arg $ points_arg
          $ flo_arg $ fhi_arg $ noise_arg $ seed_arg $ grid_arg $ nodes_arg
          $ decaps_arg $ netlist_arg)

(* ------------------------------------------------------------------ *)
(* compare *)

let run_compare path rank_tol seed =
  guarded @@ fun () ->
  let data = load path in
  let samples = Tangential.trim_even data.Rf.Touchstone.samples in
  let rank_rule = rank_rule_of_tol rank_tol in
  let directions = Direction.Orthonormal seed in
  Printf.printf "%-22s %8s %10s %12s\n" "algorithm" "order" "time(s)" "ERR";
  let row name f =
    let t0 = Sys.time () in
    let order, err = f () in
    Printf.printf "%-22s %8d %10.3f %12.3e\n%!" name order (Sys.time () -. t0) err
  in
  row "VFTI" (fun () ->
      let options = { Vfti.default_options with rank_rule; directions } in
      let r = Vfti.fit ~options samples in
      (r.Algorithm1.rank, Metrics.err r.Algorithm1.model samples));
  row "MFTI-1 (t=2)" (fun () ->
      let options =
        { Algorithm1.default_options with
          weight = Tangential.Uniform 2; rank_rule; directions }
      in
      let r = Algorithm1.fit ~options samples in
      (r.Algorithm1.rank, Metrics.err r.Algorithm1.model samples));
  row "MFTI-1 (full)" (fun () ->
      let r =
        Algorithm1.fit
          ~options:{ Algorithm1.default_options with rank_rule; directions }
          samples
      in
      (r.Algorithm1.rank, Metrics.err r.Algorithm1.model samples));
  row "MFTI-2 (recursive)" (fun () ->
      let options =
        { Algorithm2.default_options with rank_rule; directions }
      in
      let r = Algorithm2.fit ~options samples in
      (r.Algorithm2.rank, Metrics.err r.Algorithm2.model samples));
  row "VF (n=50)" (fun () ->
      let model, _ =
        Vfit.Vf.fit ~options:{ Vfit.Vf.default_options with n_poles = 50 } samples
      in
      (Vfit.Vf.order model, Vfit.Vf.err model samples));
  0

let compare_cmd =
  let info = Cmd.info "compare" ~doc:"Run every algorithm and tabulate." in
  Cmd.v info Term.(const run_compare $ touchstone_arg $ rank_tol_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* info *)

let run_info path =
  guarded @@ fun () ->
  let data = load path in
  let samples = data.Rf.Touchstone.samples in
  let p, m = Sampling.port_dims samples in
  let k = Array.length samples in
  Printf.printf "%s: %d samples, %dx%d matrices, z0 = %g ohm\n" path k p m
    data.Rf.Touchstone.z0;
  Printf.printf "band: %.4g Hz .. %.4g Hz\n" samples.(0).Sampling.freq
    samples.(k - 1).Sampling.freq;
  Printf.printf "max singular value over samples: %.6f %s\n"
    (Rf.Sparams.max_singular_value samples)
    (if Rf.Sparams.max_singular_value samples <= 1. +. 1e-9 then "(passive)"
     else "(NOT passive)");
  0

let info_cmd =
  let info = Cmd.info "info" ~doc:"Summarize a Touchstone file." in
  Cmd.v info Term.(const run_info $ touchstone_arg)

(* ------------------------------------------------------------------ *)
(* pack: fit and persist a binary model artifact *)

let pack_out_arg =
  let doc = "Output artifact file (.mfti)." in
  Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let pack_name_arg =
  let doc = "Artifact name recorded in the header (default: input file)." in
  Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc)

(* Fit with the same algorithm switch as `fit`, returning the unified
   model wrapper plus the samples it was fitted on. *)
let fit_to_model ~algorithm ~width ~rank_tol ~seed ~poles ~certify samples =
  let rank_rule = rank_rule_of_tol rank_tol in
  let directions = Direction.Orthonormal seed in
  match algorithm with
  | `Vf ->
    let m =
      Vfit.Vf.fit_model
        ~options:{ Vfit.Vf.default_options with n_poles = poles } samples
    in
    (match certify with
     | Certify.Off -> m
     | mode ->
       (match
          Engine.Model.certify
            ~options:{ Certify.default_options with mode }
            ~freqs:(sample_freqs samples) m
        with
        | Ok m -> m
        | Error e -> Linalg.Mfti_error.raise_error e))
  | (`Mfti | `Vfti | `Mfti2) as alg ->
    let strategy, options =
      match alg with
      | `Mfti ->
        ( Engine.Direct,
          { Engine.default_options with
            weight = weight_of_width ~samples width; rank_rule; directions } )
      | `Vfti ->
        ( Engine.Vector,
          { Engine.default_options with rank_rule; directions } )
      | `Mfti2 ->
        ( Engine.Recursive Engine.Incremental,
          { Engine.default_recursive_options with
            weight = (if width = 0 then Tangential.Uniform 2
                      else Tangential.Uniform width);
            rank_rule; directions } )
    in
    let options = { options with Engine.certify } in
    Engine.Model.of_fit (Engine.fit ~options ~strategy samples)

let run_pack path policy algorithm width rank_tol seed poles out name
    certify =
  guarded @@ fun () ->
  let data = load ~policy path in
  let samples = Tangential.trim_even data.Rf.Touchstone.samples in
  let model =
    fit_to_model ~algorithm ~width ~rank_tol ~seed ~poles ~certify samples
  in
  let fit_err = Engine.Model.err model samples in
  let name = match name with Some n -> n | None -> Filename.basename path in
  let artifact = Serve.Artifact.v ~name ~fit_err model in
  Serve.Artifact.save out artifact;
  let bytes = (Unix.stat out).Unix.st_size in
  Printf.printf "packed %s -> %s (order %d, %dx%d ports, ERR %.3e, %d bytes)\n"
    name out (Engine.Model.order model) (Engine.Model.outputs model)
    (Engine.Model.inputs model) fit_err bytes;
  print_certificate (Engine.Model.certificate model);
  0

let pack_cmd =
  let info =
    Cmd.info "pack"
      ~doc:"Fit a macromodel and write a binary artifact (.mfti)."
  in
  Cmd.v info
    Term.(const run_pack $ touchstone_arg $ policy_arg $ algorithm_arg
          $ width_arg $ rank_tol_arg $ seed_arg $ poles_arg $ pack_out_arg
          $ pack_name_arg $ certify_arg)

(* ------------------------------------------------------------------ *)
(* inspect: decode an artifact header (checksum-verified by load) *)

let artifact_arg =
  let doc = "Packed model artifact (.mfti)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"ARTIFACT" ~doc)

let run_inspect path =
  guarded @@ fun () ->
  let art = Serve.Artifact.load_exn path in
  let m = art.Serve.Artifact.model in
  Printf.printf "artifact: %s (format v%d, checksum ok)\n" path
    Serve.Artifact.format_version;
  Printf.printf "name: %s\n" art.Serve.Artifact.name;
  (* a NaN/inf timestamp must print as "unknown", not feed Unix.gmtime *)
  Printf.printf "created: %s\n"
    (let c = art.Serve.Artifact.created in
     if Float.is_finite c && c >= 0. then
       let tm = Unix.gmtime c in
       Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ"
         (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
         tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
     else "unknown");
  Printf.printf "order %d, %d outputs x %d inputs, rank %d\n"
    (Engine.Model.order m) (Engine.Model.outputs m) (Engine.Model.inputs m)
    (Engine.Model.rank m);
  Printf.printf "fit error: %s\n"
    (let e = art.Serve.Artifact.fit_err in
     if Float.is_nan e then "unknown" else Printf.sprintf "%.3e" e);
  Printf.printf "singular values kept: %d\n"
    (Array.length (Engine.Model.sigma m));
  (match Engine.Model.stats m with
   | Some s ->
     Printf.printf "fit: %d/%d units in %d iterations\n"
       s.Engine.Model.selected_units s.Engine.Model.total_units
       s.Engine.Model.iterations
   | None -> ());
  (match Engine.Model.certificate m with
   | Some c ->
     Printf.printf "certificate: %s\n" (Certify.Certificate.to_string c)
   | None -> Printf.printf "certificate: none (uncertified)\n");
  List.iter
    (fun (stage, dt) -> Printf.printf "stage %-9s %9.4f s\n" stage dt)
    (Engine.Model.timings m);
  let compiled = Serve.Compiled.of_model m in
  Printf.printf "compiled: %s (%d poles)\n"
    (match Serve.Compiled.mode compiled with
     | Serve.Compiled.Pole_residue -> "pole-residue"
     | Serve.Compiled.Direct -> "direct LU fallback")
    (Array.length (Serve.Compiled.poles compiled));
  0

let inspect_cmd =
  let info =
    Cmd.info "inspect" ~doc:"Print a packed artifact's metadata."
  in
  Cmd.v info Term.(const run_inspect $ artifact_arg)

(* ------------------------------------------------------------------ *)
(* serve: line-delimited-JSON evaluation server *)

let root_arg =
  let doc = "Directory of packed artifacts; <id>.mfti serves model <id>." in
  Arg.(required & opt (some dir) None & info [ "root" ] ~docv:"DIR" ~doc)

let socket_arg =
  let doc =
    "Listen on a Unix domain socket at this path instead of stdio."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc =
    "Listen on TCP at $(docv) (e.g. 127.0.0.1:7070; port 0 picks an \
     ephemeral port, printed at startup) instead of stdio.  Mutually \
     exclusive with $(b,--socket)."
  in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let cache_mb_arg =
  let doc = "Model cache budget in MiB." in
  Arg.(value & opt int 256 & info [ "cache-mb" ] ~docv:"MB" ~doc)

let workers_arg =
  let doc = "Worker pool size for the socket transport (>= 1)." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let queue_arg =
  let doc =
    "Admission queue capacity; connections beyond it are shed with a \
     typed 'overloaded' response."
  in
  Arg.(value & opt int 16 & info [ "queue" ] ~docv:"N" ~doc)

let request_timeout_arg =
  let doc =
    "Per-request deadline in milliseconds (also bounds how long a \
     partially-received frame may stall)."
  in
  Arg.(value & opt int 5000
       & info [ "request-timeout-ms" ] ~docv:"MS" ~doc)

let drain_arg =
  let doc =
    "Graceful-drain budget in milliseconds: on shutdown, in-flight \
     connections get this long to finish before being force-closed."
  in
  Arg.(value & opt int 2000 & info [ "drain-ms" ] ~docv:"MS" ~doc)

let admission_arg =
  let a =
    Arg.enum
      [ ("open", Serve.Server.Open); ("warn", Serve.Server.Warn);
        ("strict", Serve.Server.Strict) ]
  in
  let doc =
    "Admission policy for uncertified or failed-certification models: \
     $(b,strict) refuses them with a typed response, $(b,warn) serves \
     them but counts the lapse in stats, $(b,open) ignores \
     certification."
  in
  Arg.(value & opt a Serve.Server.Warn
       & info [ "admission" ] ~docv:"POLICY" ~doc)

let report_quarantine server =
  List.iter
    (fun (q : Serve.Artifact.quarantine) ->
      Printf.eprintf "mfti serve: quarantined %s -> %s: %s\n%!"
        q.original q.quarantined
        (Linalg.Mfti_error.to_string q.reason))
    (Serve.Server.quarantined server)

let run_serve root socket tcp cache_mb workers queue request_timeout_ms
    drain_ms admission =
  guarded @@ fun () ->
  if cache_mb < 0 then invalid_arg "serve: cache budget must be >= 0";
  if workers < 1 then invalid_arg "serve: --workers must be >= 1";
  if queue < 1 then invalid_arg "serve: --queue must be >= 1";
  if request_timeout_ms < 1 then
    invalid_arg "serve: --request-timeout-ms must be >= 1";
  if drain_ms < 0 then invalid_arg "serve: --drain-ms must be >= 0";
  if socket <> None && tcp <> None then
    invalid_arg "serve: --socket and --tcp are mutually exclusive";
  let server =
    Serve.Server.create ~cache_bytes:(cache_mb * 1024 * 1024) ~admission
      ~root ()
  in
  report_quarantine server;
  let listen =
    match (socket, tcp) with
    | Some path, None -> Some (Serve.Supervisor.Unix_path path)
    | None, Some addr ->
      (match Serve.Router.parse_addr addr with
       | Serve.Supervisor.Tcp _ as l -> Some l
       | Serve.Supervisor.Unix_path _ ->
         invalid_arg "serve: --tcp wants HOST:PORT")
    | None, None -> None
    | Some _, Some _ -> assert false
  in
  (match listen with
   | None -> ignore (Serve.Server.serve_channels server stdin stdout)
   | Some listen ->
     let config =
       { Serve.Supervisor.default_config with
         workers; queue; request_timeout_ms; drain_ms }
     in
     let sup = Serve.Supervisor.start ~config server ~listen in
     (match (listen, Serve.Supervisor.bound_port sup) with
      | Serve.Supervisor.Tcp (host, _), Some port ->
        Printf.eprintf
          "mfti serve: listening on %s:%d (%d workers, queue %d)\n%!" host
          port workers queue
      | Serve.Supervisor.Unix_path path, _ ->
        Printf.eprintf
          "mfti serve: listening on %s (%d workers, queue %d)\n%!" path
          workers queue
      | _ -> ());
     Serve.Supervisor.wait sup;
     Serve.Supervisor.stop sup);
  Printf.eprintf "mfti serve: %s\n%!"
    (Serve.Sjson.to_string (Serve.Server.stats_json server));
  0

let serve_cmd =
  let info =
    Cmd.info "serve"
      ~doc:
        "Serve eval-grid/model-info queries over stdio, a Unix socket, or \
         TCP (socket/TCP transports are supervised: worker pool, \
         deadlines, load shedding, graceful drain, binary frame \
         negotiation)."
  in
  Cmd.v info
    Term.(const run_serve $ root_arg $ socket_arg $ tcp_arg $ cache_mb_arg
          $ workers_arg $ queue_arg $ request_timeout_arg $ drain_arg
          $ admission_arg)

(* ------------------------------------------------------------------ *)
(* route: sharded, replicated serving tier *)

let route_listen_arg =
  let doc =
    "Address clients connect to: HOST:PORT (port 0 = ephemeral, printed \
     at startup) or a Unix socket path."
  in
  Arg.(required & opt (some string) None
       & info [ "listen" ] ~docv:"ADDR" ~doc)

let route_replica_arg =
  let doc =
    "Replica server address (HOST:PORT or socket path); repeatable.  \
     Models shard over the replicas by consistent hashing on the model \
     id."
  in
  Arg.(non_empty & opt_all string [] & info [ "replica" ] ~docv:"ADDR" ~doc)

let route_vnodes_arg =
  let doc = "Virtual nodes per replica on the hash ring." in
  Arg.(value & opt int 64 & info [ "vnodes" ] ~docv:"N" ~doc)

let route_probe_arg =
  let doc = "Health-probe period in milliseconds." in
  Arg.(value & opt int 200 & info [ "probe-interval-ms" ] ~docv:"MS" ~doc)

let route_fail_threshold_arg =
  let doc = "Consecutive probe failures before a replica is down." in
  Arg.(value & opt int 3 & info [ "fail-threshold" ] ~docv:"N" ~doc)

let route_failover_arg =
  let doc =
    "Extra ring candidates tried after a connection-level failure."
  in
  Arg.(value & opt int 2 & info [ "max-failover" ] ~docv:"N" ~doc)

let route_hold_arg =
  let doc =
    "Hold a fresh eval-grid batch open this many milliseconds so \
     concurrent requests for the same model coalesce into one upstream \
     call (0 = only coalesce naturally-concurrent requests)."
  in
  Arg.(value & opt int 0 & info [ "coalesce-hold-ms" ] ~docv:"MS" ~doc)

let route_conns_arg =
  let doc = "Client connection cap; beyond it connections are shed." in
  Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N" ~doc)

let run_route listen replicas vnodes probe_interval_ms fail_threshold
    max_failover request_timeout_ms coalesce_hold_ms max_conns =
  guarded @@ fun () ->
  let listen = Serve.Router.parse_addr listen in
  let config =
    { Serve.Router.default_config with
      vnodes; probe_interval_ms; fail_threshold; max_failover;
      request_timeout_ms; coalesce_hold_ms; max_conns }
  in
  let rt = Serve.Router.start ~config ~listen ~replicas () in
  (match (listen, Serve.Router.bound_port rt) with
   | Serve.Supervisor.Tcp (host, _), Some port ->
     Printf.eprintf "mfti route: listening on %s:%d over %d replicas\n%!"
       host port (List.length replicas)
   | Serve.Supervisor.Unix_path p, _ ->
     Printf.eprintf "mfti route: listening on %s over %d replicas\n%!" p
       (List.length replicas)
   | _ -> ());
  Serve.Router.wait rt;
  Serve.Router.stop rt;
  let s = Serve.Router.stats rt in
  Printf.eprintf
    "mfti route: %d requests, %d forwarded, %d failovers, %d coalesce \
     hits, %d timeouts, %d unavailable\n%!"
    s.Serve.Router.rt_requests s.Serve.Router.rt_forwarded
    s.Serve.Router.rt_failovers s.Serve.Router.rt_coalesce_hits
    s.Serve.Router.rt_timeouts s.Serve.Router.rt_unavailable;
  0

let route_cmd =
  let info =
    Cmd.info "route"
      ~doc:
        "Front a fleet of replica servers: shard models by consistent \
         hashing, health-check and fail over between replicas, coalesce \
         concurrent eval-grid requests, and negotiate binary frames on \
         both sides."
  in
  Cmd.v info
    Term.(const run_route $ route_listen_arg $ route_replica_arg
          $ route_vnodes_arg $ route_probe_arg $ route_fail_threshold_arg
          $ route_failover_arg $ request_timeout_arg $ route_hold_arg
          $ route_conns_arg)

(* ------------------------------------------------------------------ *)
(* fit-stream: drive a server-resident streaming fit session *)

let stream_socket_arg =
  let doc =
    "Address of a running server: the Unix socket of $(b,mfti serve \
     --socket), or HOST:PORT for $(b,mfti serve --tcp) / $(b,mfti \
     route).  Connection attempts retry with capped exponential \
     backoff."
  in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"ADDR" ~doc)

let batches_arg =
  let doc = "Stream the fitting samples in this many batches." in
  Arg.(value & opt int 3 & info [ "batches" ] ~docv:"N" ~doc)

let suggest_arg =
  let doc =
    "Ask the server for this many adaptive next-frequency suggestions \
     before finalizing (0 = skip)."
  in
  Arg.(value & opt int 2 & info [ "suggest" ] ~docv:"N" ~doc)

let model_id_arg =
  let doc =
    "Model id the finalized fit is packed under in the server's store \
     (default: the input file's base name)."
  in
  Arg.(value & opt (some string) None & info [ "model-id" ] ~docv:"ID" ~doc)

let certify_name = function
  | Certify.Off -> "off"
  | Certify.Check -> "check"
  | Certify.Repair -> "repair"

let stream_fail message =
  Linalg.Mfti_error.raise_error
    (Linalg.Mfti_error.Validation { context = "fit-stream"; message })

(* Connect to a server address (HOST:PORT or Unix socket path) with
   capped exponential backoff.  Giving up is a typed diagnostic naming
   the attempt count, never a raw Unix error. *)
let connect_with_retry ?(attempts = 5) ?(base_ms = 100) ?(cap_ms = 2_000)
    ~fail addr_s =
  let addr =
    match Serve.Router.parse_addr addr_s with
    | a -> a
    | exception Linalg.Mfti_error.Error _ ->
      Serve.Supervisor.Unix_path addr_s
  in
  let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let try_once () =
    match addr with
    | Serve.Supervisor.Unix_path p ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.connect fd (Unix.ADDR_UNIX p) with
       | () -> Ok fd
       | exception Unix.Unix_error (e, _, _) ->
         close_quiet fd;
         Error (Unix.error_message e))
    | Serve.Supervisor.Tcp (host, port) ->
      let ip =
        try Some (Unix.inet_addr_of_string host)
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> None
          | h -> Some h.Unix.h_addr_list.(0)
          | exception Not_found -> None)
      in
      (match ip with
       | None -> Error ("cannot resolve host " ^ host)
       | Some ip ->
         let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         (try Unix.setsockopt fd Unix.TCP_NODELAY true
          with Unix.Unix_error _ -> ());
         (match Unix.connect fd (Unix.ADDR_INET (ip, port)) with
          | () -> Ok fd
          | exception Unix.Unix_error (e, _, _) ->
            close_quiet fd;
            Error (Unix.error_message e)))
  in
  let rec go n delay_ms =
    match try_once () with
    | Ok fd -> fd
    | Error msg ->
      if n >= attempts then
        fail
          (Printf.sprintf
             "gave up connecting to %s after %d attempts (capped \
              exponential backoff): %s"
             addr_s attempts msg)
      else begin
        Unix.sleepf (float_of_int delay_ms /. 1000.);
        go (n + 1) (Stdlib.min cap_ms (delay_ms * 2))
      end
  in
  go 1 base_ms

let sample_json (s : Sampling.sample) =
  let p, m = Linalg.Cmat.dims s.Sampling.s in
  Serve.Sjson.Obj
    [ ("freq", Serve.Sjson.Num s.Sampling.freq);
      ( "s",
        Serve.Sjson.Arr
          (List.init p (fun i ->
               Serve.Sjson.Arr
                 (List.init m (fun j ->
                      let z = Linalg.Cmat.get s.Sampling.s i j in
                      Serve.Sjson.Arr
                        [ Serve.Sjson.Num z.Linalg.Cx.re;
                          Serve.Sjson.Num z.Linalg.Cx.im ])))) ) ]

let stream_request oc ic req =
  output_string oc (Serve.Sjson.to_string req);
  output_char oc '\n';
  flush oc;
  match input_line ic with
  | exception End_of_file -> stream_fail "server closed the connection"
  | line ->
    let resp =
      match Serve.Sjson.parse line with
      | resp -> resp
      | exception Serve.Sjson.Parse_error m ->
        stream_fail ("unparseable server response: " ^ m)
    in
    (match Serve.Sjson.member "ok" resp with
     | Some (Serve.Sjson.Bool true) -> resp
     | _ ->
       let detail =
         match Serve.Sjson.member "error" resp with
         | Some err ->
           (match (Serve.Sjson.member "kind" err,
                   Serve.Sjson.member "message" err) with
            | Some (Serve.Sjson.Str k), Some (Serve.Sjson.Str m) ->
              k ^ ": " ^ m
            | _ -> line)
         | None -> line
       in
       stream_fail ("server refused: " ^ detail))

let jstr resp name =
  match Serve.Sjson.member name resp with
  | Some (Serve.Sjson.Str s) -> s
  | _ -> stream_fail (Printf.sprintf "response is missing string %S" name)

let jnum resp name =
  match Serve.Sjson.member name resp with
  | Some (Serve.Sjson.Num f) -> f
  | _ -> stream_fail (Printf.sprintf "response is missing number %S" name)

let run_fit_stream path policy socket batches holdout_every width rank_tol
    certify_mode suggest model_id =
  guarded @@ fun () ->
  if batches < 1 then invalid_arg "fit-stream: --batches must be >= 1";
  if suggest < 0 then invalid_arg "fit-stream: --suggest must be >= 0";
  let data = load ~policy path in
  let samples = data.Rf.Touchstone.samples in
  let fit, held =
    if holdout_every > 0 then Sampling.partition ~every:holdout_every samples
    else (samples, [||])
  in
  let fit = Tangential.trim_even fit in
  if Array.length fit < 2 then
    stream_fail "need at least one sample pair to stream";
  let p, m = Sampling.port_dims fit in
  let model_id =
    match model_id with
    | Some id -> id
    | None -> Filename.remove_extension (Filename.basename path)
  in
  let sock = connect_with_retry ~fail:stream_fail socket in
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  Fun.protect
    ~finally:(fun () ->
      (try close_out oc with Sys_error _ -> ());
      (try close_in ic with Sys_error _ -> ()))
  @@ fun () ->
  let request = stream_request oc ic in
  let open_fields =
    [ ("op", Serve.Sjson.Str "fit-open");
      ( "ports",
        if p = m then Serve.Sjson.Num (float_of_int p)
        else
          Serve.Sjson.Arr
            [ Serve.Sjson.Num (float_of_int p);
              Serve.Sjson.Num (float_of_int m) ] );
      ("certify", Serve.Sjson.Str (certify_name certify_mode)) ]
    @ (if width > 0 then [ ("width", Serve.Sjson.Num (float_of_int width)) ]
       else [])
    @ (if rank_tol > 0. then [ ("rank-tol", Serve.Sjson.Num rank_tol) ]
       else [])
  in
  let opened = request (Serve.Sjson.Obj open_fields) in
  let session = jstr opened "session" in
  Printf.printf "session %s: %dx%d ports, ttl %gs\n%!" session p m
    (jnum opened "ttl_s");
  let npairs = Array.length fit / 2 in
  let per_batch = Stdlib.max 1 ((npairs + batches - 1) / batches) in
  let b = ref 0 in
  while !b * per_batch < npairs do
    let lo = !b * per_batch * 2 in
    let hi = Stdlib.min (Array.length fit) ((!b + 1) * per_batch * 2) in
    let chunk = Array.sub fit lo (hi - lo) in
    let resp =
      request
        (Serve.Sjson.Obj
           [ ("op", Serve.Sjson.Str "fit-add-samples");
             ("session", Serve.Sjson.Str session);
             ( "samples",
               Serve.Sjson.Arr
                 (Array.to_list (Array.map sample_json chunk)) ) ])
    in
    Printf.printf "batch %d: +%d samples (%d total), stage %s\n%!" (!b + 1)
      (Array.length chunk)
      (int_of_float (jnum resp "samples"))
      (jstr resp "stage");
    incr b
  done;
  if Array.length held > 0 then begin
    let resp =
      request
        (Serve.Sjson.Obj
           [ ("op", Serve.Sjson.Str "fit-add-samples");
             ("session", Serve.Sjson.Str session);
             ("holdout", Serve.Sjson.Bool true);
             ( "samples",
               Serve.Sjson.Arr
                 (Array.to_list (Array.map sample_json held)) ) ])
    in
    Printf.printf "hold-out: +%d samples (%d total)\n%!" (Array.length held)
      (int_of_float (jnum resp "holdout_samples"))
  end;
  let status =
    request
      (Serve.Sjson.Obj
         [ ("op", Serve.Sjson.Str "fit-status");
           ("session", Serve.Sjson.Str session);
           ("refit", Serve.Sjson.Bool true) ])
  in
  (match Serve.Sjson.member "holdout_err" status with
   | Some (Serve.Sjson.Num e) ->
     Printf.printf "refit: stage %s, hold-out ERR %.3e\n%!"
       (jstr status "stage") e
   | _ -> Printf.printf "refit: stage %s\n%!" (jstr status "stage"));
  if suggest > 0 then begin
    let resp =
      request
        (Serve.Sjson.Obj
           [ ("op", Serve.Sjson.Str "fit-suggest");
             ("session", Serve.Sjson.Str session);
             ("count", Serve.Sjson.Num (float_of_int suggest)) ])
    in
    match Serve.Sjson.member "suggestions" resp with
    | Some (Serve.Sjson.Arr suggestions) ->
      Printf.printf "suggested next frequencies:\n";
      List.iter
        (fun s ->
          Printf.printf "  %.6g Hz (score %.3e)\n" (jnum s "freq")
            (jnum s "score"))
        suggestions;
      Printf.printf "%!"
    | _ -> stream_fail "fit-suggest response has no suggestions"
  end;
  let fin =
    request
      (Serve.Sjson.Obj
         [ ("op", Serve.Sjson.Str "fit-finalize");
           ("session", Serve.Sjson.Str session);
           ("model", Serve.Sjson.Str model_id);
           ("name", Serve.Sjson.Str (Filename.basename path)) ])
  in
  let fit_err =
    match Serve.Sjson.member "fit_err" fin with
    | Some (Serve.Sjson.Num e) -> Printf.sprintf "%.3e" e
    | _ -> "n/a"
  in
  Printf.printf "finalized: model %s, order %d, rank %d, ERR %s%s\n%!"
    (jstr fin "model")
    (int_of_float (jnum fin "order"))
    (int_of_float (jnum fin "rank"))
    fit_err
    (match Serve.Sjson.member "certificate" fin with
     | Some (Serve.Sjson.Obj _) -> " (certified)"
     | _ -> "");
  0

let fit_stream_cmd =
  let info =
    Cmd.info "fit-stream"
      ~doc:
        "Stream a Touchstone file into a server-resident fit session in \
         batches, ask for adaptive next frequencies, and finalize into \
         the server's model store."
  in
  Cmd.v info
    Term.(const run_fit_stream $ touchstone_arg $ policy_arg
          $ stream_socket_arg $ batches_arg $ holdout_arg $ width_arg
          $ rank_tol_arg $ certify_arg $ suggest_arg $ model_id_arg)

let () =
  let doc = "matrix-format tangential interpolation macromodeling" in
  let info = Cmd.info "mfti" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ fit_cmd; engine_cmd; gen_cmd; compare_cmd; info_cmd; pack_cmd;
            inspect_cmd; serve_cmd; route_cmd; fit_stream_cmd ]))
