(* Post-processing macromodels: balanced truncation, stabilization and
   passivity verification.

   Four stages a production flow chains after (or before) fitting:
   1. balanced truncation with its guaranteed H-infinity error bound —
      demonstrated on the PDN's impedance model, whose Hankel spectrum
      collapses after ~2/3 of the states;
   2. MFTI fitting of noisy scattering data with a noise-matched rank
      cut, plus pole reflection for any unstable stragglers;
   3. the Hamiltonian passivity test, which pinpoints every frequency
      where sigma_max(S) crosses 1;
   4. the one-call certification pipeline (Certify.run) that chains 2
      and 3 with perturbative repair and emits the typed certificate
      the serving layer's admission policy checks.

   Run with: dune exec examples/post_processing.exe *)

open Statespace
open Mfti

let spec = { Rf.Pdn.default_spec with nx = 5; ny = 5; ports = 6; decaps = 5 }

let () =
  (* --- 1. balanced truncation of the impedance model --------------- *)
  let z_model = Rf.Mna.to_descriptor (Rf.Pdn.build spec) in
  Printf.printf "PDN impedance model: %d states\n" (Descriptor.order z_model);
  let reduced = Reduction.balanced_truncation ~rtol:1e-7 z_model in
  let freqs = Sampling.logspace 1e6 2e9 40 in
  let worst =
    Array.fold_left
      (fun acc f ->
        let d =
          Linalg.Cmat.sub
            (Descriptor.eval_freq z_model f)
            (Descriptor.eval_freq reduced.Reduction.model f)
        in
        Stdlib.max acc (Linalg.Svd.norm2 d))
      0. freqs
  in
  Printf.printf
    "balanced truncation: %d -> %d states; H-inf bound %.2e, observed %.2e\n"
    (Descriptor.order z_model) reduced.Reduction.retained
    reduced.Reduction.error_bound worst;
  Printf.printf "Hankel spectrum around the cut:";
  Array.iteri
    (fun i h ->
      if i >= reduced.Reduction.retained - 2
         && i <= reduced.Reduction.retained + 2 then
        Printf.printf " [%d]=%.2e" i h)
    reduced.Reduction.hankel;
  Printf.printf
    "\n(scattering models resist this: S-parameters are near-unitary, so\n\
     their Hankel values are all close to 1 — reduce in the Z domain)\n\n";

  (* --- 2. fit noisy S-data, stabilize ------------------------------ *)
  let truth = Rf.Pdn.scattering_model spec ~z0:50. in
  let grid = Sampling.linspace 1e6 2e9 80 in
  let clean = Sampling.sample_system truth grid in
  let noisy = Rf.Noise.add_relative ~seed:12 ~level:1e-3 clean in
  (* Cut the rank at the noise floor.  Cutting far below it (Tol 1e-4
     here) keeps scores of noise modes — half of them unstable — and no
     post-processing can rescue that model. *)
  let options =
    { Algorithm1.default_options with
      weight = Tangential.Uniform 3;
      rank_rule = Svd_reduce.Tol 3e-3 }
  in
  let fit = Algorithm1.fit ~options noisy in
  Printf.printf "fitted model: %s\n"
    (Metrics.report ~name:"MFTI" fit.Algorithm1.model clean);
  let stab = Stabilize.reflect fit.Algorithm1.model in
  Printf.printf "stabilization: %d poles reflected\n\n" stab.Stabilize.flipped;

  (* --- 3. passivity gate ------------------------------------------- *)
  let report name model =
    match Rf.Passivity.check model with
    | Rf.Passivity.Passive -> Printf.printf "%s: passive\n" name
    | Rf.Passivity.Feedthrough_violation s ->
      Printf.printf "%s: NOT passive at infinite frequency (sigma D = %.4f)\n"
        name s
    | Rf.Passivity.Violations fs ->
      Printf.printf
        "%s: sigma_max(S) crosses 1 at %d frequencies, first %.3e Hz\n" name
        (List.length fs) (List.hd fs)
  in
  report "original PDN    " truth;
  report "fitted model    " fit.Algorithm1.model;
  report "stabilized model" stab.Stabilize.model;
  Printf.printf
    "(a fitted model can be mildly non-passive where noise pushed\n\
     sigma_max above 1 — the check tells the designer exactly where)\n\n";

  (* --- 4. one-call certification ----------------------------------- *)
  (* Stages 2 and 3 as the serving layer runs them: check, repair
     perturbatively, re-check, and emit the evidence record that a
     strict admission policy demands before a model is served. *)
  let sample_freqs = Array.map (fun s -> s.Sampling.freq) noisy in
  (match Certify.run ~freqs:sample_freqs fit.Algorithm1.model with
   | Ok (certified, Some cert) ->
     Printf.printf "certify: %s\n" (Certify.Certificate.to_string cert);
     Printf.printf "certified model: %s\n"
       (Metrics.report ~name:"certified" certified clean)
   | Ok (_, None) -> Printf.printf "certify: skipped (mode = Off)\n"
   | Error e ->
     Printf.printf "certify: refused — %s\n" (Linalg.Mfti_error.to_string e))
