(* Quickstart: macromodel an RLC interconnect from frequency samples.

   1. build a 10-section RLC transmission-line model (the "device under
      test" standing in for an EM solver or a VNA measurement);
   2. wrap its sampled scattering matrices in a Dataset, holding out a
      second frequency grid the fit never sees;
   3. recover a state-space macromodel with the staged engine (paper
      Algorithm 1 = the Direct strategy);
   4. check the model against the held-out frequencies.

   Run with: dune exec examples/quickstart.exe *)

open Statespace
open Mfti

let () =
  (* 1. the device: a lossy RLC ladder, 2 ports, order 20 *)
  let line = Rf.Ladder.default_spec in
  let dut = Rf.Ladder.scattering_model line ~z0:50. in
  Printf.printf "device under test: %d states, %d ports\n"
    (Descriptor.order dut) (Descriptor.inputs dut);

  (* 2. sample S(f) at 22 log-spaced frequencies; hold out 31 more for
     validation off the sampling grid *)
  let freqs = Sampling.logspace 1e6 2e10 22 in
  let dataset =
    Dataset.of_system dut freqs ~holdout_freqs:(Sampling.logspace 3e6 1e10 31)
  in
  Printf.printf "sampled %d scattering matrices from %.0e to %.0e Hz\n"
    (Dataset.size dataset) freqs.(0) freqs.(Array.length freqs - 1);

  (* 3. fit: matrix-format tangential interpolation, one engine call *)
  let model =
    match Engine.ingest dataset with
    | Error e -> failwith (Linalg.Mfti_error.to_string e)
    | Ok st ->
      (match Engine.model st with
       | Error e -> failwith (Linalg.Mfti_error.to_string e)
       | Ok m -> m)
  in
  Printf.printf "MFTI recovered a model of order %d\n" (Engine.Model.rank model);

  (* 4. validate: Dataset.err scores against the held-out grid *)
  Printf.printf "%s\n"
    (Engine.Model.report ~name:"MFTI" model (Dataset.holdout_samples dataset));
  Printf.printf "model is %s and %s\n"
    (if Engine.Model.is_real model then "real" else "complex")
    (if Engine.Model.stable model then "stable" else "UNSTABLE");

  (* bonus: how few samples would have sufficed?  Theorem 3.5 counts all
     states; modes resonating outside the sampled band are weakly
     observable, so real devices want a small margin on top. *)
  let k_min =
    Svd_reduce.minimal_samples ~order:(Descriptor.order dut)
      ~rank_d:2 ~inputs:2 ~outputs:2
  in
  Printf.printf "theorem 3.5 bound: %d samples; sweeping around it:\n" k_min;
  List.iter
    (fun k ->
      let small =
        Dataset.of_system dut (Sampling.logspace 1e6 2e10 k)
          ~holdout_freqs:(Sampling.logspace 3e6 1e10 31)
      in
      let r = Engine.run_exn small in
      Printf.printf "  %s\n"
        (Metrics.report
           ~name:(Printf.sprintf "MFTI, %2d samples" k)
           r.Engine.model (Dataset.holdout_samples small)))
    [ k_min - 4; k_min; k_min + 4 ]
