(* Example-2 scenario: macromodeling a noisy 14-port power distribution
   network, comparing MFTI's recursive Algorithm 2 (the engine's
   incremental strategy) against the VFTI baseline on badly distributed
   samples.

   Uses a smaller PDN than the Table 1 bench so it runs in a couple of
   seconds.  Run with: dune exec examples/pdn_modeling.exe *)

open Statespace
open Mfti

let () =
  let spec = { Rf.Pdn.default_spec with nx = 5; ny = 5; ports = 6; decaps = 5 } in
  let truth = Rf.Pdn.scattering_model spec ~z0:50. in
  Printf.printf "PDN: %d ports, underlying order %d\n" (Descriptor.inputs truth)
    (Descriptor.order truth);

  (* ill-conditioned sampling: most points crowded into the high band;
     the clean samples serve as the hold-out view for scoring *)
  let freqs =
    Sampling.clustered ~lo:1e6 ~hi:3e9 ~split:3e8 ~fraction:0.8 60
  in
  let clean = Sampling.sample_system truth freqs in
  let noisy = Rf.Noise.add_relative ~seed:9 ~level:1e-3 clean in
  let dataset = Dataset.of_samples noisy ~holdout:clean in
  Printf.printf "60 samples, 80%% above 300 MHz, -60 dB measurement noise\n\n";

  let rank_rule = Svd_reduce.Tol 3e-3 in

  Printf.printf "VFTI baseline...\n%!";
  let vfti =
    Engine.run_exn ~strategy:Engine.Vector
      ~options:{ Engine.default_options with rank_rule }
      dataset
  in
  Printf.printf "  %s\n\n%!" (Metrics.report ~name:"VFTI" vfti.Engine.model clean);

  Printf.printf "MFTI-1 with extra weight on the sparse low band...\n%!";
  let k = Array.length freqs in
  let weight =
    (* samples arrive low-band first: give them wider blocks *)
    Tangential.Per_sample (Array.init k (fun i -> if i < k / 3 then 3 else 2))
  in
  let mfti1 =
    Engine.run_exn ~strategy:Engine.Direct
      ~options:{ Engine.default_options with weight; rank_rule }
      dataset
  in
  Printf.printf "  %s\n\n%!" (Metrics.report ~name:"MFTI-1" mfti1.Engine.model clean);

  Printf.printf "MFTI-2 (recursive, picks its own samples)...\n%!";
  let options =
    { Engine.default_recursive_options with
      weight = Tangential.Uniform 2; batch = 6; threshold = 1e-2; rank_rule }
  in
  let mfti2 =
    match Engine.ingest ~options
            ~strategy:(Engine.Recursive Engine.Incremental) dataset with
    | Error e -> failwith (Linalg.Mfti_error.to_string e)
    | Ok st ->
      (match Engine.model st with
       | Error e -> failwith (Linalg.Mfti_error.to_string e)
       | Ok m -> m)
  in
  Printf.printf "  %s\n"
    (Engine.Model.report ~name:"MFTI-2" mfti2 clean);
  (match Engine.Model.stats mfti2 with
   | None -> ()
   | Some s ->
     Printf.printf "  used %d of %d tangential units in %d iterations\n"
       s.Engine.Model.selected_units s.Engine.Model.total_units
       s.Engine.Model.iterations;
     Printf.printf "  held-out residual history:";
     Array.iter
       (fun e ->
         if Float.is_nan e then Printf.printf " (exhausted)"
         else Printf.printf " %.2e" e)
       s.Engine.Model.history;
     Printf.printf "\n");
  Printf.printf "  per-stage time:";
  List.iter
    (fun (stage, dt) -> Printf.printf " %s %.3fs" stage dt)
    (Engine.Model.timings mfti2);
  Printf.printf "\n"
